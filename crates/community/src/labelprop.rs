//! Label propagation community detection (Raghavan et al. 2007).
//!
//! Near-linear per sweep: every node adopts the most frequent label
//! among its neighbors (ties broken uniformly at random), iterating
//! until labels are stable or the sweep budget is exhausted.
//! Deterministic given the seed.

use crate::partition::Partition;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use socmix_graph::{Graph, NodeId};

/// Options for [`label_propagation`].
#[derive(Debug, Clone, Copy)]
pub struct LabelPropOptions {
    /// Maximum full sweeps over the node set.
    pub max_sweeps: usize,
    /// RNG seed (node visiting order and tie-breaking).
    pub seed: u64,
}

impl Default for LabelPropOptions {
    fn default() -> Self {
        LabelPropOptions {
            max_sweeps: 50,
            seed: 0,
        }
    }
}

/// Runs asynchronous label propagation and returns the resulting
/// [`Partition`].
pub fn label_propagation(g: &Graph, opts: LabelPropOptions) -> Partition {
    let n = g.num_nodes();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    if n == 0 {
        return Partition::from_labels(&labels);
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut order: Vec<NodeId> = g.nodes().collect();
    // scratch: label -> count, reset per node via the touched list
    let mut counts: Vec<u32> = vec![0; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut best_labels: Vec<u32> = Vec::new();
    for _sweep in 0..opts.max_sweeps {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &v in &order {
            let nbrs = g.neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            touched.clear();
            let mut best = 0u32;
            for &u in nbrs {
                let l = labels[u as usize];
                if counts[l as usize] == 0 {
                    touched.push(l);
                }
                counts[l as usize] += 1;
                best = best.max(counts[l as usize]);
            }
            best_labels.clear();
            for &l in &touched {
                if counts[l as usize] == best {
                    best_labels.push(l);
                }
            }
            let new = if best_labels.len() == 1 {
                best_labels[0]
            } else {
                // prefer keeping the current label when it ties
                // (stabilizes convergence), otherwise uniform choice
                let cur = labels[v as usize];
                if best_labels.contains(&cur) {
                    cur
                } else {
                    best_labels[rng.random_range(0..best_labels.len())]
                }
            };
            for &l in &touched {
                counts[l as usize] = 0;
            }
            if new != labels[v as usize] {
                labels[v as usize] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Partition::from_labels(&labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use socmix_gen::fixtures;
    use socmix_gen::sbm::planted_partition;

    #[test]
    fn splits_disconnected_cliques() {
        use socmix_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        for c in 0..3u32 {
            let base = c * 4;
            for u in 0..4 {
                for v in (u + 1)..4 {
                    b.add_edge(base + u, base + v);
                }
            }
        }
        let g = b.build();
        let p = label_propagation(&g, LabelPropOptions::default());
        assert_eq!(p.num_communities(), 3);
        for c in 0..3u32 {
            assert_eq!(p.members(c).len(), 4);
        }
    }

    #[test]
    fn recovers_planted_partition() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = planted_partition(4, 50, 0.4, 0.005, &mut rng);
        let p = label_propagation(&g, LabelPropOptions::default());
        // strong planted structure: modularity should be high and
        // the number of recovered communities close to 4
        let q = p.modularity(&g);
        assert!(
            q > 0.5,
            "modularity {q} too low for a strong planted partition"
        );
        assert!(
            (2..=8).contains(&p.num_communities()),
            "found {} communities",
            p.num_communities()
        );
    }

    #[test]
    fn complete_graph_collapses_to_one() {
        let g = fixtures::complete(12);
        let p = label_propagation(&g, LabelPropOptions::default());
        assert_eq!(p.num_communities(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = planted_partition(3, 30, 0.3, 0.02, &mut rng);
        let opts = LabelPropOptions {
            max_sweeps: 50,
            seed: 7,
        };
        let a = label_propagation(&g, opts);
        let b = label_propagation(&g, opts);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph() {
        use socmix_graph::Graph;
        let p = label_propagation(&Graph::empty(0), LabelPropOptions::default());
        assert!(p.is_empty());
    }

    #[test]
    fn isolated_nodes_keep_own_label() {
        use socmix_graph::Graph;
        let p = label_propagation(&Graph::empty(3), LabelPropOptions::default());
        assert_eq!(p.num_communities(), 3);
    }
}
