//! Network community profile (NCP).
//!
//! Leskovec et al.'s diagnostic (the paper cites their community-
//! structure dataset paper — reference 10 — for Slashdot): for each community
//! size `k`, the best (lowest) conductance achievable by a community
//! of that size. Social networks characteristically have an NCP that
//! dips at small sizes and rises for large ones — tight small
//! communities, no good large cuts. The mixing-time connection: the
//! global minimum of the NCP lower-bounds the conductance `Φ`, and
//! `Φ ≥ 1 − µ` ties it to the SLEM.
//!
//! Computing the exact NCP is NP-hard; this module uses the standard
//! approximation — sweeps of personalized-PageRank-style local
//! diffusion vectors from many seeds — which is the technique the
//! original NCP paper used.

use crate::partition::Partition;
use rand::Rng;
use socmix_graph::{Graph, NodeId};

/// One NCP point: best conductance observed at a given size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NcpPoint {
    pub size: usize,
    pub conductance: f64,
}

/// Approximates the NCP by sweeping truncated random-walk diffusion
/// vectors from `seeds` random seeds, recording for each prefix size
/// the minimum conductance seen.
///
/// Returns points for sizes `2..=max_size` where a cut was observed,
/// sorted by size. Deterministic in the `rng`.
pub fn ncp_approx<R: Rng + ?Sized>(
    g: &Graph,
    seeds: usize,
    walk_steps: usize,
    max_size: usize,
    rng: &mut R,
) -> Vec<NcpPoint> {
    assert!(g.num_edges() > 0, "NCP needs edges");
    let n = g.num_nodes();
    let max_size = max_size.min(n - 1).max(2);
    let mut best = vec![f64::INFINITY; max_size + 1];
    let vol_total = g.total_degree();
    for _ in 0..seeds {
        let seed = rng.random_range(0..n as NodeId);
        // truncated lazy diffusion from the seed
        let mut x = vec![0.0f64; n];
        x[seed as usize] = 1.0;
        for _ in 0..walk_steps {
            let mut y = vec![0.0f64; n];
            for v in 0..n {
                let mass = x[v];
                if mass <= 1e-12 {
                    continue;
                }
                y[v] += 0.5 * mass;
                let share = 0.5 * mass / g.degree(v as NodeId).max(1) as f64;
                for &u in g.neighbors(v as NodeId) {
                    y[u as usize] += share;
                }
            }
            x = y;
        }
        // sweep by degree-normalized mass
        let mut order: Vec<NodeId> = (0..n as NodeId).filter(|&v| x[v as usize] > 0.0).collect();
        order.sort_by(|&a, &b| {
            let sa = x[a as usize] / g.degree(a).max(1) as f64;
            let sb = x[b as usize] / g.degree(b).max(1) as f64;
            sb.total_cmp(&sa).then(a.cmp(&b))
        });
        let mut in_set = vec![false; n];
        let mut cut = 0isize;
        let mut vol = 0usize;
        for (k, &v) in order.iter().enumerate() {
            in_set[v as usize] = true;
            vol += g.degree(v);
            for &u in g.neighbors(v) {
                if in_set[u as usize] {
                    cut -= 1;
                } else {
                    cut += 1;
                }
            }
            let size = k + 1;
            if size > max_size || size >= n {
                break;
            }
            let denom = vol.min(vol_total - vol);
            if denom == 0 {
                continue;
            }
            let phi = cut as f64 / denom as f64;
            if phi < best[size] {
                best[size] = phi;
            }
        }
    }
    (2..=max_size)
        .filter(|&s| best[s].is_finite())
        .map(|s| NcpPoint {
            size: s,
            conductance: best[s],
        })
        .collect()
}

/// The minimum conductance over an NCP — an upper bound on the graph
/// conductance `Φ` (and hence a certificate that `1 − µ ≤ Φ ≤` this).
pub fn ncp_minimum(points: &[NcpPoint]) -> Option<NcpPoint> {
    points
        .iter()
        .copied()
        .min_by(|a, b| a.conductance.total_cmp(&b.conductance))
}

/// Conductance of each detected community of a [`Partition`], as NCP
/// points (size, conductance) — the "detected communities" overlay on
/// an NCP plot.
pub fn partition_ncp(g: &Graph, p: &Partition) -> Vec<NcpPoint> {
    let sizes = p.sizes();
    p.community_conductances(g)
        .into_iter()
        .enumerate()
        .filter_map(|(c, phi)| {
            phi.map(|conductance| NcpPoint {
                size: sizes[c],
                conductance,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labelprop::{label_propagation, LabelPropOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socmix_gen::fixtures;
    use socmix_gen::sbm::planted_partition;

    #[test]
    fn barbell_ncp_dips_at_clique_size() {
        let k = 8;
        let g = fixtures::barbell(k, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let points = ncp_approx(&g, 16, 8, 2 * k - 1, &mut rng);
        let best = ncp_minimum(&points).unwrap();
        assert_eq!(best.size, k, "best cut should isolate one clique");
        let ideal = 1.0 / (k as f64 * (k as f64 - 1.0) + 1.0);
        assert!((best.conductance - ideal).abs() < 1e-9);
    }

    #[test]
    fn expander_has_high_ncp_floor() {
        let g = fixtures::complete(16);
        let mut rng = StdRng::seed_from_u64(1);
        let points = ncp_approx(&g, 8, 5, 15, &mut rng);
        let best = ncp_minimum(&points).unwrap();
        assert!(best.conductance > 0.4, "complete graph has no sparse cuts");
    }

    #[test]
    fn planted_partition_ncp_finds_blocks() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = planted_partition(4, 40, 0.4, 0.005, &mut rng);
        let points = ncp_approx(&g, 24, 10, 80, &mut rng);
        let best = ncp_minimum(&points).unwrap();
        // the planted blocks of 40 nodes are the best communities
        assert!(
            (30..=50).contains(&best.size),
            "best size {} should be near the planted 40",
            best.size
        );
        assert!(best.conductance < 0.1);
    }

    #[test]
    fn points_are_size_sorted_and_bounded() {
        let g = fixtures::grid(8, 8);
        let mut rng = StdRng::seed_from_u64(3);
        let points = ncp_approx(&g, 8, 6, 30, &mut rng);
        assert!(points.windows(2).all(|w| w[0].size < w[1].size));
        assert!(points.iter().all(|p| p.conductance > 0.0));
    }

    #[test]
    fn ncp_minimum_tolerates_nan_conductance() {
        // a NaN conductance used to panic min_by's partial_cmp; under
        // total_cmp it sorts as the largest value and never wins
        let points = [
            NcpPoint {
                size: 2,
                conductance: f64::NAN,
            },
            NcpPoint {
                size: 3,
                conductance: 0.25,
            },
            NcpPoint {
                size: 4,
                conductance: 0.5,
            },
        ];
        let best = ncp_minimum(&points).unwrap();
        assert_eq!(best.size, 3);
        assert_eq!(best.conductance, 0.25);
    }

    #[test]
    fn partition_ncp_matches_community_conductance() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = planted_partition(3, 30, 0.5, 0.01, &mut rng);
        let p = label_propagation(&g, LabelPropOptions::default());
        let pts = partition_ncp(&g, &p);
        assert_eq!(pts.len(), p.num_communities());
        for pt in pts {
            assert!(
                pt.conductance < 0.3,
                "planted blocks are strong communities"
            );
        }
    }
}
