//! Spectral clustering via walk-matrix eigenvectors.
//!
//! The multi-eigenvector generalization of the sweep cut in
//! `socmix-core::conductance`: embed each node by the leading
//! non-trivial eigenvectors of the walk matrix (scaled by
//! `D^{-1/2}`), then cluster the embedding with k-means. On
//! community-structured graphs the embedding is near-piecewise-
//! constant per community, so even plain Lloyd's iteration recovers
//! them — and the eigenvalues driving the embedding are exactly the
//! ones that slow the mixing down, making the "communities ⇔ slow
//! mixing" correspondence visible coordinate by coordinate.

use crate::partition::Partition;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socmix_graph::{Graph, NodeId};
use socmix_linalg::{lanczos_topk, DeflatedOp, LanczosOptions, SymmetricWalkOp};

/// Options for [`spectral_clustering`].
#[derive(Debug, Clone, Copy)]
pub struct SpectralOptions {
    /// Number of clusters `k` (uses `k − 1` eigenvectors).
    pub clusters: usize,
    /// Lloyd's iterations.
    pub kmeans_iters: usize,
    /// Restarts of k-means (best inertia wins).
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpectralOptions {
    fn default() -> Self {
        SpectralOptions {
            clusters: 2,
            kmeans_iters: 50,
            restarts: 4,
            seed: 0,
        }
    }
}

/// The spectral embedding: rows are nodes, columns are the
/// `dims` leading non-trivial walk eigenvectors scaled by
/// `D^{-1/2}` (so the embedding is constant on a disconnected
/// component — the idealized community).
pub fn spectral_embedding(g: &Graph, dims: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(g.num_edges() > 0 && dims >= 1);
    let sop = SymmetricWalkOp::new(g);
    let basis = vec![sop.top_eigenvector()];
    let defl = DeflatedOp::new(sop, &basis);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5bec);
    let opts = LanczosOptions {
        max_iter: (dims * 40).max(120),
        ..Default::default()
    };
    let top = lanczos_topk(&defl, dims, opts, &mut rng);
    let n = g.num_nodes();
    (0..n)
        .map(|v| {
            let scale = 1.0 / (g.degree(v as NodeId) as f64).sqrt();
            top.vectors.iter().map(|vec| vec[v] * scale).collect()
        })
        .collect()
}

/// Spectral clustering: embedding + k-means. Returns a [`Partition`]
/// with up to `clusters` communities.
///
/// # Example
///
/// ```
/// use socmix_community::{spectral_clustering, SpectralOptions};
/// let g = socmix_gen::fixtures::barbell(6, 0); // two cliques
/// let p = spectral_clustering(&g, SpectralOptions::default());
/// assert_eq!(p.num_communities(), 2);
/// assert_ne!(p.label(0), p.label(11));
/// ```
pub fn spectral_clustering(g: &Graph, opts: SpectralOptions) -> Partition {
    assert!(opts.clusters >= 2, "need at least 2 clusters");
    let n = g.num_nodes();
    if n == 0 {
        return Partition::from_labels(&[]);
    }
    let dims = opts.clusters - 1;
    let emb = spectral_embedding(g, dims, opts.seed);
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x4a11);
    let mut best: Option<(f64, Vec<u32>)> = None;
    for _ in 0..opts.restarts.max(1) {
        let (labels, inertia) = kmeans(&emb, opts.clusters, opts.kmeans_iters, &mut rng);
        if best.as_ref().map(|(bi, _)| inertia < *bi).unwrap_or(true) {
            best = Some((inertia, labels));
        }
    }
    Partition::from_labels(&best.expect("restarts >= 1").1)
}

/// Plain Lloyd's k-means with k-means++-style seeding. Returns
/// (labels, inertia).
fn kmeans<R: Rng + ?Sized>(
    points: &[Vec<f64>],
    k: usize,
    iters: usize,
    rng: &mut R,
) -> (Vec<u32>, f64) {
    let n = points.len();
    let d = points[0].len();
    let dist2 =
        |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
    // k-means++ seeding
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(points[rng.random_range(0..n)].clone());
    while centers.len() < k {
        let weights: Vec<f64> = points
            .iter()
            .map(|p| {
                centers
                    .iter()
                    .map(|c| dist2(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // all points coincide with centers; duplicate one
            centers.push(points[rng.random_range(0..n)].clone());
            continue;
        }
        let mut x = rng.random::<f64>() * total;
        let mut pick = n - 1;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                pick = i;
                break;
            }
            x -= w;
        }
        centers.push(points[pick].clone());
    }
    let mut labels = vec![0u32; n];
    for _ in 0..iters {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| dist2(p, &centers[a]).total_cmp(&dist2(p, &centers[b])))
                .unwrap() as u32;
            if best != labels[i] {
                labels[i] = best;
                changed = true;
            }
        }
        // recompute centers
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = labels[i] as usize;
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in sums[c].iter_mut() {
                    *s /= counts[c] as f64;
                }
                centers[c] = sums[c].clone();
            }
        }
        if !changed {
            break;
        }
    }
    let inertia: f64 = points
        .iter()
        .enumerate()
        .map(|(i, p)| dist2(p, &centers[labels[i] as usize]))
        .sum();
    (labels, inertia)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use socmix_gen::fixtures;
    use socmix_gen::sbm::planted_partition;

    #[test]
    fn splits_barbell_cleanly() {
        let k = 8;
        let g = fixtures::barbell(k, 0);
        let p = spectral_clustering(&g, SpectralOptions::default());
        assert_eq!(p.num_communities(), 2);
        // each clique entirely in one cluster
        let c0 = p.label(0);
        for v in 0..k as NodeId {
            assert_eq!(p.label(v), c0);
        }
        let c1 = p.label(k as NodeId);
        assert_ne!(c0, c1);
        for v in k as NodeId..2 * k as NodeId {
            assert_eq!(p.label(v), c1);
        }
    }

    #[test]
    fn recovers_planted_partition_k4() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = planted_partition(4, 40, 0.5, 0.005, &mut rng);
        let p = spectral_clustering(
            &g,
            SpectralOptions {
                clusters: 4,
                restarts: 8,
                ..Default::default()
            },
        );
        let q = p.modularity(&g);
        assert!(q > 0.6, "planted blocks should be recovered, Q = {q}");
    }

    #[test]
    fn embedding_separates_communities() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = planted_partition(2, 30, 0.5, 0.01, &mut rng);
        let emb = spectral_embedding(&g, 1, 7);
        // first coordinate should have consistent sign per block
        let mean_a: f64 = (0..30).map(|v| emb[v][0]).sum::<f64>() / 30.0;
        let mean_b: f64 = (30..60).map(|v| emb[v][0]).sum::<f64>() / 30.0;
        assert!(
            mean_a * mean_b < 0.0,
            "blocks should land on opposite sides: {mean_a} vs {mean_b}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = fixtures::barbell(6, 1);
        let a = spectral_clustering(&g, SpectralOptions::default());
        let b = spectral_clustering(&g, SpectralOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn agrees_with_label_propagation_on_strong_structure() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = planted_partition(3, 30, 0.5, 0.005, &mut rng);
        let sp = spectral_clustering(
            &g,
            SpectralOptions {
                clusters: 3,
                restarts: 8,
                ..Default::default()
            },
        );
        let lp = crate::labelprop::label_propagation(&g, Default::default());
        // both should score high modularity on a strong partition
        assert!(sp.modularity(&g) > 0.5);
        assert!(lp.modularity(&g) > 0.5);
    }
}
