//! Node partitions and their quality measures.

use socmix_graph::{Graph, NodeId};

/// A partition of the node set into communities, with dense labels
/// `0..num_communities`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    labels: Vec<u32>,
    k: usize,
}

impl Partition {
    /// Builds a partition from raw labels, renumbering them densely
    /// in order of first appearance.
    pub fn from_labels(raw: &[u32]) -> Self {
        // socmix-lint: allow(hashmap-iter-in-numeric): lookup-only map — dense ids come from insertion order over the input slice and the map itself is never iterated, so hash order cannot affect results.
        let mut remap = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(raw.len());
        for &l in raw {
            let next = remap.len() as u32;
            let dense = *remap.entry(l).or_insert(next);
            labels.push(dense);
        }
        Partition {
            labels,
            k: remap.len(),
        }
    }

    /// The trivial partition: every node in one community.
    pub fn single(n: usize) -> Self {
        Partition {
            labels: vec![0; n],
            k: if n == 0 { 0 } else { 1 },
        }
    }

    /// The discrete partition: every node its own community.
    pub fn singletons(n: usize) -> Self {
        Partition {
            labels: (0..n as u32).collect(),
            k: n,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the partition covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of communities.
    pub fn num_communities(&self) -> usize {
        self.k
    }

    /// Label of node `v`.
    pub fn label(&self, v: NodeId) -> u32 {
        self.labels[v as usize]
    }

    /// All labels (dense).
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Community sizes, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.k];
        for &l in &self.labels {
            s[l as usize] += 1;
        }
        s
    }

    /// Members of community `c`, ascending.
    pub fn members(&self, c: u32) -> Vec<NodeId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == c)
            .map(|(v, _)| v as NodeId)
            .collect()
    }

    /// Newman modularity
    /// `Q = Σ_c (e_c/m − (vol_c/2m)²)` where `e_c` is the number of
    /// intra-community edges and `vol_c` the total degree of `c`.
    ///
    /// High modularity (≳ 0.3) means strong community structure —
    /// the regime where the paper finds slow mixing.
    pub fn modularity(&self, g: &Graph) -> f64 {
        assert_eq!(self.labels.len(), g.num_nodes());
        let m = g.num_edges() as f64;
        if m == 0.0 {
            return 0.0;
        }
        let mut intra = vec![0usize; self.k];
        let mut vol = vec![0usize; self.k];
        for v in g.nodes() {
            vol[self.labels[v as usize] as usize] += g.degree(v);
        }
        for (u, v) in g.edges() {
            if self.labels[u as usize] == self.labels[v as usize] {
                intra[self.labels[u as usize] as usize] += 1;
            }
        }
        (0..self.k)
            .map(|c| {
                let e = intra[c] as f64 / m;
                let d = vol[c] as f64 / (2.0 * m);
                e - d * d
            })
            .sum()
    }

    /// The contiguous `k`-way partition: node `v` belongs to part
    /// `⌊v·k/n⌋`, so parts are equal-size index ranges. This is the
    /// edge-cut used by the sharded matvec backend: CSR locality means
    /// contiguous ranges keep most neighbors local on graphs whose
    /// node order correlates with community structure.
    pub fn contiguous(n: usize, k: usize) -> Self {
        assert!(k >= 1, "need at least one part");
        if n == 0 {
            return Partition {
                labels: Vec::new(),
                k: 0,
            };
        }
        let k = k.min(n);
        let labels = (0..n).map(|v| (v * k / n) as u32).collect();
        Partition { labels, k }
    }

    /// Number of edges crossing between communities (each undirected
    /// edge counted once) — the **edge cut** of the partition. This is
    /// the per-round communication volume driver of the sharded
    /// backend: every cut edge forces its endpoint's scaled value into
    /// another shard's gathered input slice.
    pub fn edge_cut(&self, g: &Graph) -> usize {
        assert_eq!(self.labels.len(), g.num_nodes());
        let mut cut = 0usize;
        for (u, v) in g.edges() {
            if self.labels[u as usize] != self.labels[v as usize] {
                cut += 1;
            }
        }
        cut
    }

    /// Per-community **boundary node** lists: for each community `c`,
    /// the ascending nodes of `c` with at least one neighbor outside
    /// `c`. These are exactly the nodes whose values must be shipped
    /// across shards each matvec round.
    pub fn boundary_nodes(&self, g: &Graph) -> Vec<Vec<NodeId>> {
        assert_eq!(self.labels.len(), g.num_nodes());
        let mut out = vec![Vec::new(); self.k];
        for v in g.nodes() {
            let lv = self.labels[v as usize];
            if g.neighbors(v)
                .iter()
                .any(|&u| self.labels[u as usize] != lv)
            {
                out[lv as usize].push(v);
            }
        }
        out
    }

    /// Conductance of each community viewed as a cut against the rest
    /// of the graph (`None` for degenerate cuts).
    pub fn community_conductances(&self, g: &Graph) -> Vec<Option<f64>> {
        assert_eq!(self.labels.len(), g.num_nodes());
        let vol_total = g.total_degree();
        let mut cut = vec![0usize; self.k];
        let mut vol = vec![0usize; self.k];
        for v in g.nodes() {
            let lv = self.labels[v as usize] as usize;
            vol[lv] += g.degree(v);
            for &u in g.neighbors(v) {
                if self.labels[u as usize] as usize != lv {
                    cut[lv] += 1;
                }
            }
        }
        (0..self.k)
            .map(|c| {
                let denom = vol[c].min(vol_total - vol[c]);
                if denom == 0 {
                    None
                } else {
                    Some(cut[c] as f64 / denom as f64)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socmix_gen::fixtures;

    #[test]
    fn from_labels_renumbers_densely() {
        let p = Partition::from_labels(&[7, 3, 7, 9]);
        assert_eq!(p.labels(), &[0, 1, 0, 2]);
        assert_eq!(p.num_communities(), 3);
        assert_eq!(p.sizes(), vec![2, 1, 1]);
        assert_eq!(p.members(0), vec![0, 2]);
    }

    #[test]
    fn trivial_partitions() {
        let single = Partition::single(5);
        assert_eq!(single.num_communities(), 1);
        let singles = Partition::singletons(5);
        assert_eq!(singles.num_communities(), 5);
        assert!(Partition::single(0).is_empty());
    }

    #[test]
    fn modularity_of_single_partition_is_zero() {
        let g = fixtures::petersen();
        let q = Partition::single(10).modularity(&g);
        assert!(q.abs() < 1e-12);
    }

    #[test]
    fn modularity_rewards_true_communities() {
        // barbell: the two-clique split has high modularity
        let k = 6;
        let g = fixtures::barbell(k, 0);
        let labels: Vec<u32> = (0..2 * k).map(|v| (v >= k) as u32).collect();
        let p = Partition::from_labels(&labels);
        let q = p.modularity(&g);
        assert!(q > 0.4, "clique split should score high, got {q}");
        // and beats a random split
        let bad: Vec<u32> = (0..2 * k).map(|v| (v % 2) as u32).collect();
        let qb = Partition::from_labels(&bad).modularity(&g);
        assert!(q > qb);
    }

    #[test]
    fn modularity_bounded_above_by_one() {
        let g = fixtures::barbell(5, 0);
        let labels: Vec<u32> = (0..10).map(|v| (v >= 5) as u32).collect();
        assert!(Partition::from_labels(&labels).modularity(&g) < 1.0);
    }

    #[test]
    fn community_conductance_matches_direct() {
        let k = 5;
        let g = fixtures::barbell(k, 0);
        let labels: Vec<u32> = (0..2 * k).map(|v| (v >= k) as u32).collect();
        let p = Partition::from_labels(&labels);
        let phis = p.community_conductances(&g);
        let expect = 1.0 / (k as f64 * (k as f64 - 1.0) + 1.0);
        for phi in phis {
            assert!((phi.unwrap() - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn contiguous_partition_covers_evenly() {
        let p = Partition::contiguous(10, 3);
        assert_eq!(p.num_communities(), 3);
        assert_eq!(p.len(), 10);
        // labels are monotone non-decreasing index ranges
        for w in p.labels().windows(2) {
            assert!(w[0] <= w[1]);
        }
        let sizes = p.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)), "{sizes:?}");
        // more parts than nodes degrades gracefully
        assert_eq!(Partition::contiguous(2, 5).num_communities(), 2);
        assert!(Partition::contiguous(0, 4).is_empty());
    }

    #[test]
    fn edge_cut_counts_cross_edges_once() {
        // barbell(k, 0): two k-cliques joined by a single bridge edge
        let k = 5;
        let g = fixtures::barbell(k, 0);
        let labels: Vec<u32> = (0..2 * k).map(|v| (v >= k) as u32).collect();
        let p = Partition::from_labels(&labels);
        assert_eq!(p.edge_cut(&g), 1);
        assert_eq!(Partition::single(2 * k).edge_cut(&g), 0);
        assert_eq!(Partition::singletons(2 * k).edge_cut(&g), g.num_edges());
    }

    #[test]
    fn boundary_nodes_are_cut_endpoints() {
        let k = 4;
        let g = fixtures::barbell(k, 0);
        let labels: Vec<u32> = (0..2 * k).map(|v| (v >= k) as u32).collect();
        let p = Partition::from_labels(&labels);
        let b = p.boundary_nodes(&g);
        // only the two bridge endpoints sit on the boundary
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].len(), 1);
        assert_eq!(b[1].len(), 1);
        let u = b[0][0];
        let v = b[1][0];
        assert!(g.neighbors(u).contains(&v));
        // trivial partition has no boundary at all
        let none = Partition::single(2 * k).boundary_nodes(&g);
        assert!(none[0].is_empty());
    }

    #[test]
    fn single_community_conductance_degenerate() {
        let g = fixtures::petersen();
        let phis = Partition::single(10).community_conductances(&g);
        assert_eq!(phis, vec![None]);
    }
}
