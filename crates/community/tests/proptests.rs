//! Property tests for community detection over random structured
//! graphs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use socmix_community::{label_propagation, LabelPropOptions, Partition};
use socmix_gen::sbm::planted_partition;
use socmix_graph::{GraphBuilder, NodeId};

fn arbitrary_graph() -> impl Strategy<Value = socmix_graph::Graph> {
    proptest::collection::vec((0u32..40, 0u32..40), 1..120)
        .prop_map(|edges| GraphBuilder::from_edges(edges).build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partition invariants hold for arbitrary label vectors.
    #[test]
    fn partition_invariants(labels in proptest::collection::vec(0u32..10, 1..80)) {
        let p = Partition::from_labels(&labels);
        prop_assert_eq!(p.len(), labels.len());
        prop_assert!(p.num_communities() >= 1);
        prop_assert_eq!(p.sizes().iter().sum::<usize>(), p.len());
        // dense labels
        for v in 0..p.len() as NodeId {
            prop_assert!((p.label(v) as usize) < p.num_communities());
        }
        // members partition the node set
        let total: usize = (0..p.num_communities() as u32).map(|c| p.members(c).len()).sum();
        prop_assert_eq!(total, p.len());
    }

    /// Modularity is bounded: Q ∈ [−1, 1] for any partition of any
    /// graph.
    #[test]
    fn modularity_bounded(g in arbitrary_graph(), seed in 0u64..100) {
        if g.num_edges() == 0 {
            return Ok(());
        }
        let p = label_propagation(&g, LabelPropOptions { max_sweeps: 20, seed });
        let q = p.modularity(&g);
        prop_assert!((-1.0..=1.0).contains(&q), "Q = {q}");
        // singletons and the single community both have Q ≤ detected
        let single = Partition::single(g.num_nodes()).modularity(&g);
        prop_assert!(single.abs() < 1e-9);
    }

    /// Label propagation is deterministic per seed and total.
    #[test]
    fn labelprop_deterministic(g in arbitrary_graph(), seed in 0u64..100) {
        let opts = LabelPropOptions { max_sweeps: 30, seed };
        let a = label_propagation(&g, opts);
        let b = label_propagation(&g, opts);
        prop_assert_eq!(a, b);
    }

    /// Community conductances are valid probabilities-ish (in (0, 1]
    /// for non-degenerate cuts) and sizes match.
    #[test]
    fn conductance_ranges(k in 2usize..4, size in 5usize..20, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = planted_partition(k, size, 0.6, 0.05, &mut rng);
        let p = label_propagation(&g, LabelPropOptions::default());
        for phi in p.community_conductances(&g).into_iter().flatten() {
            prop_assert!((0.0..=1.0).contains(&phi), "phi = {phi}");
        }
    }

    /// Stronger planted structure yields higher modularity.
    #[test]
    fn modularity_tracks_structure(seed in 0u64..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let strong = planted_partition(3, 30, 0.6, 0.01, &mut rng);
        let weak = planted_partition(3, 30, 0.2, 0.15, &mut rng);
        let qs = label_propagation(&strong, LabelPropOptions::default()).modularity(&strong);
        let qw = label_propagation(&weak, LabelPropOptions::default()).modularity(&weak);
        prop_assert!(qs > qw - 0.05, "strong {qs} vs weak {qw}");
    }
}
