//! Property tests over arbitrary edge lists: the graph substrate must
//! uphold its invariants for any input, not just the fixtures.

use proptest::prelude::*;
use socmix_graph::{components, sample, subgraph, trim, GraphBuilder, NodeId};

/// Arbitrary (possibly messy) edge list: duplicates, self-loops,
/// arbitrary id gaps.
fn edge_list() -> impl Strategy<Value = Vec<(NodeId, NodeId)>> {
    proptest::collection::vec((0u32..60, 0u32..60), 0..150)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_output_is_always_valid(edges in edge_list()) {
        let g = GraphBuilder::from_edges(edges).build();
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn edge_count_consistency(edges in edge_list()) {
        let g = GraphBuilder::from_edges(edges).build();
        prop_assert_eq!(g.edges().count(), g.num_edges());
        prop_assert_eq!(g.total_degree(), 2 * g.num_edges());
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, g.total_degree());
    }

    #[test]
    fn has_edge_matches_edge_iterator(edges in edge_list()) {
        let g = GraphBuilder::from_edges(edges).build();
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn component_counts_agree(edges in edge_list()) {
        let g = GraphBuilder::from_edges(edges).build();
        if g.num_nodes() == 0 {
            return Ok(());
        }
        prop_assert_eq!(
            components::connected_components(&g).count(),
            components::count_components_unionfind(&g)
        );
    }

    #[test]
    fn component_sizes_sum_to_n(edges in edge_list()) {
        let g = GraphBuilder::from_edges(edges).build();
        let c = components::connected_components(&g);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), g.num_nodes());
    }

    #[test]
    fn lcc_is_largest(edges in edge_list()) {
        let g = GraphBuilder::from_edges(edges).build();
        if g.num_nodes() == 0 {
            return Ok(());
        }
        let (lcc, _) = components::largest_component(&g);
        let c = components::connected_components(&g);
        let max_size = c.sizes.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(lcc.num_nodes(), max_size);
    }

    #[test]
    fn induced_subgraph_edges_are_subset(edges in edge_list(), keep in proptest::collection::vec(0u32..60, 0..40)) {
        let g = GraphBuilder::from_edges(edges).build();
        let keep: Vec<NodeId> = keep.into_iter().filter(|&v| (v as usize) < g.num_nodes()).collect();
        let (sub, map) = subgraph::induced_subgraph(&g, &keep);
        prop_assert!(sub.validate().is_ok());
        for (u, v) in sub.edges() {
            prop_assert!(g.has_edge(map.original(u), map.original(v)));
        }
    }

    #[test]
    fn trim_is_idempotent(edges in edge_list(), d in 0usize..5) {
        let g = GraphBuilder::from_edges(edges).build();
        let (once, _) = trim::trim_min_degree(&g, d);
        let (twice, _) = trim::trim_min_degree(&once, d);
        prop_assert_eq!(&once, &twice, "trimming must be a fixpoint");
    }

    #[test]
    fn core_numbers_bounded_by_degree(edges in edge_list()) {
        let g = GraphBuilder::from_edges(edges).build();
        let core = trim::core_numbers(&g);
        for v in g.nodes() {
            prop_assert!(core[v as usize] as usize <= g.degree(v));
        }
    }

    #[test]
    fn bfs_sample_never_exceeds_target(edges in edge_list(), target in 0usize..80) {
        let g = GraphBuilder::from_edges(edges).build();
        if g.num_nodes() == 0 {
            return Ok(());
        }
        let (s, map) = sample::bfs_sample(&g, 0, target);
        prop_assert!(s.num_nodes() <= target);
        prop_assert_eq!(s.num_nodes(), map.len());
    }


    #[test]
    fn max_flow_weak_duality(edges in edge_list()) {
        // flow value never exceeds the capacity of the degree cut
        // around the source or the sink (two specific cuts)
        use socmix_graph::flow::FlowNetwork;
        let g = GraphBuilder::from_edges(edges).build();
        if g.num_nodes() < 2 {
            return Ok(());
        }
        let s = 0 as NodeId;
        let t = (g.num_nodes() - 1) as NodeId;
        if s == t {
            return Ok(());
        }
        let mut net = FlowNetwork::new(g.num_nodes());
        for (u, v) in g.edges() {
            net.add_undirected_edge(u, v, 1);
        }
        let flow = net.max_flow(s, t);
        prop_assert!(flow >= 0);
        prop_assert!(flow as usize <= g.degree(s), "flow exceeds source degree cut");
        prop_assert!(flow as usize <= g.degree(t), "flow exceeds sink degree cut");
    }

    #[test]
    fn max_flow_symmetric_on_undirected(edges in edge_list()) {
        use socmix_graph::flow::edge_disjoint_paths;
        let g = GraphBuilder::from_edges(edges).build();
        if g.num_nodes() < 2 {
            return Ok(());
        }
        let s = 0 as NodeId;
        let t = (g.num_nodes() / 2) as NodeId;
        if s == t {
            return Ok(());
        }
        prop_assert_eq!(edge_disjoint_paths(&g, s, t), edge_disjoint_paths(&g, t, s));
    }

    #[test]
    fn betweenness_total_is_pair_path_mass(edges in edge_list()) {
        // Σ_v b(v) counts, over all connected pairs, the number of
        // interior nodes averaged over shortest paths — bounded by
        // pairs·(n−2)
        use socmix_graph::centrality::betweenness;
        let g = GraphBuilder::from_edges(edges).build();
        let n = g.num_nodes();
        if n < 3 {
            return Ok(());
        }
        let total: f64 = betweenness(&g).iter().sum();
        let max_pairs = (n * (n - 1) / 2) as f64;
        prop_assert!(total >= -1e-9);
        prop_assert!(total <= max_pairs * (n as f64 - 2.0) + 1e-6);
    }

    #[test]
    fn io_text_roundtrip(edges in edge_list()) {
        let g = GraphBuilder::from_edges(edges).build();
        let mut buf = Vec::new();
        socmix_graph::io::write_edge_list(&g, &mut buf).unwrap();
        // isolated nodes are not representable in an edge list, and
        // loading compacts ids — compare edge sets through the mapping
        let load = socmix_graph::io::read_edge_list_report(&buf[..]).unwrap();
        let original: Vec<(u32, u32)> = g.edges().collect();
        let mapped: Vec<(u32, u32)> = load
            .graph
            .edges()
            .map(|(u, v)| (load.mapping.original(u), load.mapping.original(v)))
            .collect();
        prop_assert_eq!(original, mapped);
        // the mapping keeps exactly the non-isolated nodes
        prop_assert_eq!(
            load.graph.num_nodes(),
            g.nodes().filter(|&v| g.degree(v) > 0).count()
        );
    }

    #[test]
    fn io_binary_roundtrip(edges in edge_list()) {
        let g = GraphBuilder::from_edges(edges).build();
        let mut buf = Vec::new();
        socmix_graph::io::write_binary(&g, &mut buf).unwrap();
        // both the unsized and the length-checked readers reproduce
        // the graph exactly (binary carries isolated nodes too)
        let g2 = socmix_graph::io::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(&g, &g2);
        let g3 = socmix_graph::io::read_binary_sized(&buf[..], buf.len() as u64).unwrap();
        prop_assert_eq!(&g, &g3);
    }

    #[test]
    fn io_binary_never_panics_on_corruption(edges in edge_list(), cut in 0usize..200, patch in 0u8..=255) {
        // Truncate at an arbitrary byte and clobber the byte before
        // the cut: every outcome must be a typed LoadError or a valid
        // graph — never a panic, abort, or unbounded allocation.
        let g = GraphBuilder::from_edges(edges).build();
        let mut buf = Vec::new();
        socmix_graph::io::write_binary(&g, &mut buf).unwrap();
        buf.truncate(cut.min(buf.len()));
        if let Some(last) = buf.last_mut() {
            *last ^= patch;
        }
        let _ = socmix_graph::io::read_binary(&buf[..]);
        let _ = socmix_graph::io::read_binary_sized(&buf[..], buf.len() as u64);
    }

    #[test]
    fn io_compaction_composes_with_extraction(edges in edge_list()) {
        // compact (text load) then extract a subgraph: the composed
        // mapping must agree with looking ids up stage by stage
        let g = GraphBuilder::from_edges(edges).build();
        let mut buf = Vec::new();
        socmix_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let load = socmix_graph::io::read_edge_list_report(&buf[..]).unwrap();
        let keep: Vec<u32> = load.graph.nodes().filter(|v| v % 2 == 0).collect();
        let (sub, submap) = socmix_graph::subgraph::induced_subgraph(&load.graph, &keep);
        let composed = load.mapping.compose(&submap);
        prop_assert_eq!(composed.len(), sub.num_nodes());
        for v in sub.nodes() {
            // stage-by-stage lookup equals the composed lookup
            prop_assert_eq!(
                load.mapping.original(submap.original(v)),
                composed.original(v)
            );
        }
        // and the composed mapping inverts cleanly
        for v in sub.nodes() {
            prop_assert_eq!(composed.new_id(composed.original(v)), Some(v));
        }
    }
}
