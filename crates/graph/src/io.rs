//! Edge-list and binary graph I/O.
//!
//! Two formats:
//!
//! - **Text edge list** — the format the paper's datasets (SNAP et al.)
//!   ship in: one `u v` pair per line, `#`-prefixed comment lines,
//!   arbitrary whitespace. Directed inputs are symmetrized on load,
//!   matching the paper's directed→undirected conversion.
//! - **Compact binary** — a little-endian dump of the CSR arrays with a
//!   magic header, for caching large generated graphs between
//!   experiment runs without re-generation cost.

use crate::{Graph, GraphBuilder, NodeId};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from graph loading.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A data line could not be parsed as two node ids.
    Parse { line: usize, content: String },
    /// Binary header mismatch or truncated payload.
    Format(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Parse { line, content } => {
                write!(f, "line {line}: cannot parse edge from {content:?}")
            }
            Self::Format(msg) => write!(f, "bad binary graph: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses a text edge list from a reader.
///
/// Lines starting with `#` or `%` and blank lines are skipped. Each
/// remaining line must contain at least two whitespace-separated
/// integers; any further columns (weights, timestamps) are ignored.
/// Edges are symmetrized, self-loops dropped, duplicates merged.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, LoadError> {
    let mut b = GraphBuilder::new();
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (Some(a), Some(bb)) = (it.next(), it.next()) else {
            return Err(LoadError::Parse {
                line: idx + 1,
                content: line.clone(),
            });
        };
        let (Ok(u), Ok(v)) = (a.parse::<NodeId>(), bb.parse::<NodeId>()) else {
            return Err(LoadError::Parse {
                line: idx + 1,
                content: line.clone(),
            });
        };
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Loads a text edge list from a file path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph, LoadError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes the graph as a text edge list (one `u v` line per undirected
/// edge, `u < v`), preceded by a comment header with counts.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# socmix edge list: nodes={} edges={}",
        g.num_nodes(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Saves a text edge list to a file path.
pub fn save_edge_list<P: AsRef<Path>>(g: &Graph, path: P) -> io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

const BIN_MAGIC: &[u8; 8] = b"SOCMIXG1";

/// Writes the compact binary format.
///
/// Layout (little-endian): magic `SOCMIXG1`, `u64` node count, `u64`
/// target count, `u64` offsets (n+1 of them), `u32` targets.
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(BIN_MAGIC)?;
    w.write_all(&(g.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(g.total_degree() as u64).to_le_bytes())?;
    for &off in g.offsets() {
        w.write_all(&(off as u64).to_le_bytes())?;
    }
    for &t in g.raw_targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    w.flush()
}

/// Reads the compact binary format and re-validates all invariants.
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, LoadError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BIN_MAGIC {
        return Err(LoadError::Format("magic mismatch".into()));
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let n = u64::from_le_bytes(u64buf) as usize;
    r.read_exact(&mut u64buf)?;
    let nt = u64::from_le_bytes(u64buf) as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        r.read_exact(&mut u64buf)?;
        offsets.push(u64::from_le_bytes(u64buf) as usize);
    }
    let mut targets = Vec::with_capacity(nt);
    let mut u32buf = [0u8; 4];
    for _ in 0..nt {
        r.read_exact(&mut u32buf)?;
        targets.push(NodeId::from_le_bytes(u32buf));
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&nt) {
        return Err(LoadError::Format("offset bounds inconsistent".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(LoadError::Format("offsets not monotone".into()));
    }
    let g = Graph::from_csr_unchecked(offsets, targets);
    g.validate()
        .map_err(|e| LoadError::Format(format!("invariant violation: {e}")))?;
    Ok(g)
}

/// Saves the compact binary format to a file path.
pub fn save_binary<P: AsRef<Path>>(g: &Graph, path: P) -> io::Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Loads the compact binary format from a file path.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Graph, LoadError> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]).build()
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let text = "# comment\n% other comment\n\n0 1\n1 2 999 extra-cols\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_symmetrizes_directed_input() {
        let text = "0 1\n1 0\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn text_rejects_garbage() {
        let err = read_edge_list("0 1\nhello world\n".as_bytes()).unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn text_rejects_single_column() {
        assert!(matches!(
            read_edge_list("42\n".as_bytes()),
            Err(LoadError::Parse { .. })
        ));
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip_empty() {
        let g = Graph::empty(0);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTMAGIC\0\0\0\0\0\0\0\0".to_vec();
        assert!(matches!(read_binary(&buf[..]), Err(LoadError::Format(_))));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_binary(&buf[..]), Err(LoadError::Io(_))));
    }

    #[test]
    fn binary_rejects_corrupt_targets() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Clobber the final target with an out-of-range id.
        let len = buf.len();
        buf[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_binary(&buf[..]), Err(LoadError::Format(_))));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("socmix-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample();
        let txt = dir.join("g.txt");
        let bin = dir.join("g.bin");
        save_edge_list(&g, &txt).unwrap();
        save_binary(&g, &bin).unwrap();
        assert_eq!(load_edge_list(&txt).unwrap(), g);
        assert_eq!(load_binary(&bin).unwrap(), g);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
