//! Edge-list and binary graph I/O.
//!
//! Two formats:
//!
//! - **Text edge list** — the format the paper's datasets (SNAP et al.)
//!   ship in: one `u v` pair per line, `#`-prefixed comment lines,
//!   arbitrary whitespace. Directed inputs are symmetrized on load,
//!   matching the paper's directed→undirected conversion.
//! - **Compact binary** — a little-endian dump of the CSR arrays with a
//!   magic header, for caching large generated graphs between
//!   experiment runs without re-generation cost.

use crate::subgraph::NodeMapping;
use crate::{Graph, GraphBuilder, NodeId};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from graph loading.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A data line could not be parsed as two node ids.
    Parse { line: usize, content: String },
    /// Binary header mismatch or truncated payload.
    Format(String),
    /// A u64 count or offset in the binary format does not fit this
    /// platform's `usize` (can only fire on 32-bit targets; on 64-bit
    /// ones the id-space bound rejects such headers first).
    Overflow { field: &'static str, value: u64 },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Parse { line, content } => {
                write!(f, "line {line}: cannot parse edge from {content:?}")
            }
            Self::Format(msg) => write!(f, "bad binary graph: {msg}"),
            Self::Overflow { field, value } => {
                write!(
                    f,
                    "bad binary graph: {field} {value} does not fit in this platform's usize"
                )
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// A parsed edge list after dense id compaction.
///
/// SNAP-style datasets use sparse, non-contiguous node ids; taking
/// `max id + 1` as the node count (the old behavior) silently creates
/// huge runs of isolated zero-π nodes that inflate `n`, skew the
/// stationary distribution, and waste memory. Loading therefore
/// compacts ids to dense `0..n` and reports what was remapped so
/// results can still be tied back to the original ids.
#[derive(Debug, Clone)]
pub struct EdgeListLoad {
    /// The compacted graph (dense ids, symmetrized, deduplicated).
    pub graph: Graph,
    /// Dense id → original id. `mapping.new_id(old)` recovers the
    /// compacted id of an original one.
    pub mapping: NodeMapping,
    /// Number of `u u` lines dropped.
    pub dropped_self_loops: usize,
    /// Count of unused ids below the largest referenced id — the
    /// isolated-node run the old `max id + 1` policy would have
    /// manufactured (0 for an already-dense input).
    pub id_gaps: usize,
}

/// Parses a text edge list from a reader, compacting sparse node ids.
///
/// Lines starting with `#` or `%` and blank lines are skipped. Each
/// remaining line must contain at least two whitespace-separated
/// integers; any further columns (weights, timestamps) are ignored.
/// Edges are symmetrized, self-loops dropped, duplicates merged, and
/// node ids are relabeled to dense `0..n` (ids appearing only in
/// dropped self-loops are not kept). See [`EdgeListLoad`] for the
/// returned mapping and diagnostics.
pub fn read_edge_list_report<R: Read>(reader: R) -> Result<EdgeListLoad, LoadError> {
    let mut raw: Vec<(NodeId, NodeId)> = Vec::new();
    let mut dropped_self_loops = 0usize;
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (Some(a), Some(bb)) = (it.next(), it.next()) else {
            return Err(LoadError::Parse {
                line: idx + 1,
                content: line.clone(),
            });
        };
        let (Ok(u), Ok(v)) = (a.parse::<NodeId>(), bb.parse::<NodeId>()) else {
            return Err(LoadError::Parse {
                line: idx + 1,
                content: line.clone(),
            });
        };
        if u == v {
            dropped_self_loops += 1;
        } else {
            raw.push((u, v));
        }
    }
    // Dense compaction: sorted distinct endpoint ids become the new id
    // space; the mapping records new → old.
    let mut kept: Vec<NodeId> = raw.iter().flat_map(|&(u, v)| [u, v]).collect();
    kept.sort_unstable();
    kept.dedup();
    let id_gaps = match kept.last() {
        Some(&max) => max as usize + 1 - kept.len(),
        None => 0,
    };
    let mapping = NodeMapping::from_sorted(kept);
    let mut b = GraphBuilder::with_capacity(raw.len());
    for (u, v) in raw {
        // ids are guaranteed present in the mapping by construction
        let cu = mapping.new_id(u).expect("endpoint id in mapping");
        let cv = mapping.new_id(v).expect("endpoint id in mapping");
        b.add_edge(cu, cv);
    }
    b.grow_to(mapping.len());
    Ok(EdgeListLoad {
        graph: b.build(),
        mapping,
        dropped_self_loops,
        id_gaps,
    })
}

/// Parses a text edge list from a reader (compacting sparse ids),
/// returning just the graph. Use [`read_edge_list_report`] when the
/// original-id mapping or load diagnostics are needed.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, LoadError> {
    Ok(read_edge_list_report(reader)?.graph)
}

/// Loads a text edge list from a file path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph, LoadError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes the graph as a text edge list (one `u v` line per undirected
/// edge, `u < v`), preceded by a comment header with counts.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# socmix edge list: nodes={} edges={}",
        g.num_nodes(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Saves a text edge list to a file path.
pub fn save_edge_list<P: AsRef<Path>>(g: &Graph, path: P) -> io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

const BIN_MAGIC: &[u8; 8] = b"SOCMIXG1";

/// Writes the compact binary format.
///
/// Layout (little-endian): magic `SOCMIXG1`, `u64` node count, `u64`
/// target count, `u64` offsets (n+1 of them), `u32` targets.
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(BIN_MAGIC)?;
    w.write_all(&(g.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(g.total_degree() as u64).to_le_bytes())?;
    for &off in g.offsets() {
        w.write_all(&(off as u64).to_le_bytes())?;
    }
    for &t in g.raw_targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    w.flush()
}

/// Largest node count the format can describe: `NodeId` is `u32`, so
/// a header claiming more nodes than the id space is corrupt.
const MAX_BIN_NODES: u64 = NodeId::MAX as u64 + 1;

/// Elements pre-allocated per array before any payload has been seen.
/// Header counts are **untrusted**: a corrupt or truncated file can
/// claim astronomically large arrays, and sizing `Vec::with_capacity`
/// straight from the wire would commit multi-GB allocations (or abort
/// on capacity overflow) before a single payload byte is validated.
/// Capping the pre-allocation means memory grows only as data actually
/// arrives — a lying header just reads until EOF and fails with a
/// typed error.
const MAX_PREALLOC: usize = 1 << 20;

/// Bytes in the fixed header: magic + node count + target count.
const BIN_HEADER_BYTES: u64 = 8 + 8 + 8;

/// Validated header counts `(n, nt)` for the binary format.
///
/// `payload_len` — the exact byte count following the header, when the
/// source can know it (a file's metadata, a slice's length) — lets the
/// claimed counts be cross-checked against reality *before* any
/// allocation. Without it, counts are still bounded by the id space
/// and by checked size arithmetic.
fn read_bin_header<R: Read>(
    r: &mut R,
    payload_len: Option<u64>,
) -> Result<(usize, usize), LoadError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BIN_MAGIC {
        return Err(LoadError::Format("magic mismatch".into()));
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let n = u64::from_le_bytes(u64buf);
    r.read_exact(&mut u64buf)?;
    let nt = u64::from_le_bytes(u64buf);
    if n > MAX_BIN_NODES {
        return Err(LoadError::Format(format!(
            "header claims {n} nodes, beyond the u32 id space"
        )));
    }
    // 8 bytes per offset (n+1 of them), 4 per target; checked so a
    // malicious header cannot overflow the size computation.
    let expected = (n + 1)
        .checked_mul(8)
        .and_then(|o| nt.checked_mul(4).and_then(|t| o.checked_add(t)));
    let Some(expected) = expected else {
        return Err(LoadError::Format(format!(
            "header sizes overflow ({n} nodes, {nt} targets)"
        )));
    };
    if let Some(len) = payload_len {
        if expected != len {
            return Err(LoadError::Format(format!(
                "header claims {expected} payload bytes but stream has {len}"
            )));
        }
    }
    Ok((
        checked_usize(n, "node count")?,
        checked_usize(nt, "target count")?,
    ))
}

/// Converts an untrusted u64 field to `usize`, surfacing a typed
/// [`LoadError::Overflow`] instead of silently truncating on targets
/// where `usize` is narrower than 64 bits.
fn checked_usize(value: u64, field: &'static str) -> Result<usize, LoadError> {
    value
        .try_into()
        .map_err(|_| LoadError::Overflow { field, value })
}

/// Reads the binary arrays after a validated header.
fn read_bin_body<R: Read>(r: &mut R, n: usize, nt: usize) -> Result<Graph, LoadError> {
    let mut u64buf = [0u8; 8];
    let mut offsets = Vec::with_capacity((n + 1).min(MAX_PREALLOC));
    for _ in 0..=n {
        r.read_exact(&mut u64buf)?;
        offsets.push(checked_usize(u64::from_le_bytes(u64buf), "offset")?);
    }
    let mut targets = Vec::with_capacity(nt.min(MAX_PREALLOC));
    let mut u32buf = [0u8; 4];
    for _ in 0..nt {
        r.read_exact(&mut u32buf)?;
        targets.push(NodeId::from_le_bytes(u32buf));
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&nt) {
        return Err(LoadError::Format("offset bounds inconsistent".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(LoadError::Format("offsets not monotone".into()));
    }
    let g = Graph::from_csr_unchecked(offsets, targets);
    g.validate()
        .map_err(|e| LoadError::Format(format!("invariant violation: {e}")))?;
    Ok(g)
}

/// Reads the compact binary format and re-validates all invariants.
///
/// Header counts are treated as untrusted (bounded pre-allocation,
/// checked arithmetic); corrupt input yields a typed [`LoadError`],
/// never a panic or an unbounded allocation. When the total stream
/// length is known up front, prefer [`read_binary_sized`] (which
/// [`load_binary`] uses), rejecting count/length mismatches before
/// reading any payload.
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, LoadError> {
    let mut r = BufReader::new(reader);
    let (n, nt) = read_bin_header(&mut r, None)?;
    read_bin_body(&mut r, n, nt)
}

/// As [`read_binary`], for sources whose total length (header included)
/// is known: the header's claimed counts must match `stream_len`
/// exactly, so truncated or padded files fail as [`LoadError::Format`]
/// before any array is allocated.
pub fn read_binary_sized<R: Read>(reader: R, stream_len: u64) -> Result<Graph, LoadError> {
    let mut r = BufReader::new(reader);
    let payload = stream_len.checked_sub(BIN_HEADER_BYTES).ok_or_else(|| {
        LoadError::Format(format!(
            "stream of {stream_len} bytes is shorter than the {BIN_HEADER_BYTES}-byte header"
        ))
    })?;
    let (n, nt) = read_bin_header(&mut r, Some(payload))?;
    read_bin_body(&mut r, n, nt)
}

/// Saves the compact binary format to a file path.
pub fn save_binary<P: AsRef<Path>>(g: &Graph, path: P) -> io::Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Loads the compact binary format from a file path, cross-checking
/// the header's claimed counts against the file size before reading.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Graph, LoadError> {
    let f = std::fs::File::open(path)?;
    let len = f.metadata()?.len();
    read_binary_sized(f, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]).build()
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let text = "# comment\n% other comment\n\n0 1\n1 2 999 extra-cols\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_symmetrizes_directed_input() {
        let text = "0 1\n1 0\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn text_rejects_garbage() {
        let err = read_edge_list("0 1\nhello world\n".as_bytes()).unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn text_rejects_single_column() {
        assert!(matches!(
            read_edge_list("42\n".as_bytes()),
            Err(LoadError::Parse { .. })
        ));
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip_empty() {
        let g = Graph::empty(0);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn text_compacts_sparse_ids() {
        // SNAP-style sparse ids: 5, 1_000_000, 2_000_000 must become a
        // 3-node graph, not a 2,000,001-node one.
        let text = "1000000 2000000\n2000000 5\n";
        let load = read_edge_list_report(text.as_bytes()).unwrap();
        assert_eq!(load.graph.num_nodes(), 3);
        assert_eq!(load.graph.num_edges(), 2);
        assert_eq!(load.id_gaps, 2_000_001 - 3);
        assert_eq!(load.mapping.original(load.mapping.new_id(5).unwrap()), 5);
        let a = load.mapping.new_id(1_000_000).unwrap();
        let b = load.mapping.new_id(2_000_000).unwrap();
        assert!(load.graph.has_edge(a, b));
        assert!(load.mapping.new_id(6).is_none());
    }

    #[test]
    fn text_dense_input_maps_identically() {
        let load = read_edge_list_report("0 1\n1 2\n".as_bytes()).unwrap();
        assert_eq!(load.id_gaps, 0);
        assert_eq!(load.dropped_self_loops, 0);
        for v in 0..3u32 {
            assert_eq!(load.mapping.new_id(v), Some(v));
        }
    }

    #[test]
    fn text_loop_only_id_is_not_kept() {
        // id 7 appears only in a dropped self-loop: it must not become
        // an isolated node in the compacted graph.
        let load = read_edge_list_report("0 1\n7 7\n".as_bytes()).unwrap();
        assert_eq!(load.graph.num_nodes(), 2);
        assert_eq!(load.dropped_self_loops, 1);
        assert!(load.mapping.new_id(7).is_none());
    }

    #[test]
    fn binary_rejects_absurd_header_counts() {
        // A header claiming u64::MAX nodes must fail with a typed
        // error, not a capacity overflow abort or a huge allocation.
        for (n, nt) in [
            (u64::MAX, 0u64),
            (u64::MAX - 7, u64::MAX - 7),
            (1u64 << 40, 8),
            (4, u64::MAX / 4),
        ] {
            let mut buf = BIN_MAGIC.to_vec();
            buf.extend_from_slice(&n.to_le_bytes());
            buf.extend_from_slice(&nt.to_le_bytes());
            assert!(
                matches!(
                    read_binary(&buf[..]),
                    Err(LoadError::Format(_) | LoadError::Io(_))
                ),
                "n={n} nt={nt} must be rejected"
            );
            let len = buf.len() as u64;
            assert!(
                matches!(read_binary_sized(&buf[..], len), Err(LoadError::Format(_))),
                "sized read must reject n={n} nt={nt} from the header alone"
            );
        }
    }

    #[test]
    fn binary_sized_rejects_truncation_as_format() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let len = buf.len() as u64;
        assert!(matches!(
            read_binary_sized(&buf[..], len),
            Err(LoadError::Format(_))
        ));
    }

    #[test]
    fn binary_sized_rejects_trailing_garbage() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.extend_from_slice(&[0u8; 5]);
        let len = buf.len() as u64;
        assert!(matches!(
            read_binary_sized(&buf[..], len),
            Err(LoadError::Format(_))
        ));
    }

    #[test]
    fn binary_sized_rejects_short_header() {
        assert!(matches!(
            read_binary_sized(&b"SOC"[..], 3),
            Err(LoadError::Format(_))
        ));
    }

    #[test]
    fn binary_sized_accepts_exact_stream() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let len = buf.len() as u64;
        assert_eq!(read_binary_sized(&buf[..], len).unwrap(), g);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTMAGIC\0\0\0\0\0\0\0\0".to_vec();
        assert!(matches!(read_binary(&buf[..]), Err(LoadError::Format(_))));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_binary(&buf[..]), Err(LoadError::Io(_))));
    }

    #[test]
    fn binary_rejects_non_monotone_offsets() {
        // single edge 0–1: n=2, nt=2, offsets [0, 1, 2], targets [1, 0]
        let mut buf = BIN_MAGIC.to_vec();
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        for off in [0u64, 1, 2] {
            buf.extend_from_slice(&off.to_le_bytes());
        }
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        // sanity: the untampered buffer parses
        assert!(read_binary(&buf[..]).is_ok());
        // non-monotone interior offset: [0, 9, 2]
        buf[32..40].copy_from_slice(&9u64.to_le_bytes());
        match read_binary(&buf[..]) {
            Err(LoadError::Format(msg)) => assert!(msg.contains("monotone"), "{msg}"),
            other => panic!("expected monotone-offset rejection, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_corrupt_targets() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Clobber the final target with an out-of-range id.
        let len = buf.len();
        buf[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_binary(&buf[..]), Err(LoadError::Format(_))));
    }

    #[test]
    fn overflow_error_is_typed_and_displayed() {
        let e = LoadError::Overflow {
            field: "offset",
            value: u64::MAX,
        };
        let msg = e.to_string();
        assert!(msg.contains("offset") && msg.contains(&u64::MAX.to_string()));
        // u64 fields that fit convert losslessly
        assert_eq!(checked_usize(42, "node count").unwrap(), 42);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("socmix-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample();
        let txt = dir.join("g.txt");
        let bin = dir.join("g.bin");
        save_edge_list(&g, &txt).unwrap();
        save_binary(&g, &bin).unwrap();
        assert_eq!(load_edge_list(&txt).unwrap(), g);
        assert_eq!(load_binary(&bin).unwrap(), g);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
