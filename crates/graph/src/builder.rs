//! Mutable edge accumulator that freezes into a [`Graph`].

use crate::{Graph, NodeId};

/// Accumulates edges and freezes them into a canonical [`Graph`].
///
/// The builder owns all input-sanitization policy:
///
/// - every added edge is treated as undirected (stored both ways), which
///   is exactly the paper's directed→undirected conversion,
/// - self-loops are dropped,
/// - parallel edges are deduplicated at [`GraphBuilder::build`] time,
/// - node ids are dense `0..n` where `n` is one past the largest id seen
///   (or a larger explicit [`GraphBuilder::grow_to`] value).
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    /// Edge list as (min, max) pairs; may contain duplicates until build.
    edges: Vec<(NodeId, NodeId)>,
    /// Number of nodes = max id seen + 1, or an explicit floor.
    n: usize,
    /// Count of self-loops dropped, for diagnostics.
    dropped_self_loops: usize,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder that pre-reserves space for `m` edges.
    pub fn with_capacity(m: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(m),
            n: 0,
            dropped_self_loops: 0,
        }
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are silently
    /// dropped (counted in [`GraphBuilder::dropped_self_loops`]) and do
    /// **not** grow the node-id space — a dropped loop on an otherwise
    /// unseen id must not manufacture an isolated node (use
    /// [`GraphBuilder::grow_to`] to reserve ids explicitly). Duplicates
    /// are removed when building.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        if u == v {
            self.dropped_self_loops += 1;
            return;
        }
        let hi = u.max(v) as usize + 1;
        if hi > self.n {
            self.n = hi;
        }
        self.edges.push((u.min(v), u.max(v)));
    }

    /// Ensures the node-id space covers `0..n` even if some of those
    /// nodes end up isolated.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.n {
            self.n = n;
        }
    }

    /// Number of self-loop insertions that were dropped.
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Number of (possibly duplicate) edges currently staged.
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Current node-id space size.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Builds the edge list from an iterator of pairs.
    pub fn from_edges<I>(edges: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut b = GraphBuilder::new();
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b
    }

    /// Freezes into a canonical [`Graph`] (sorted, deduplicated,
    /// symmetric CSR). Consumes the builder.
    pub fn build(mut self) -> Graph {
        // Sort-dedup the canonicalized (min,max) pairs, then do a
        // counting-sort style CSR fill. O(m log m + n + m).
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.n;
        let mut deg = vec![0usize; n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as NodeId; acc];
        for &(u, v) in &self.edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each list was filled in ascending order of the *other*
        // endpoint only for the (u,v) with u<v half; the reverse half
        // interleaves, so sort each list. Lists are typically short;
        // sort_unstable on slices is fine and keeps the code obvious.
        for v in 0..n {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph::from_csr(offsets, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_parallel_edges() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn drops_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge(3, 3);
        b.add_edge(0, 1);
        assert_eq!(b.dropped_self_loops(), 1);
        let g = b.build();
        assert_eq!(g.num_nodes(), 2); // the dropped loop reserves nothing
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn dropped_self_loop_does_not_reserve_id_space() {
        // A self-loop on a previously unseen max id must not create an
        // isolated node; only real edges (or grow_to) extend `n`.
        let mut b = GraphBuilder::new();
        b.add_edge(9, 9);
        assert_eq!(b.num_nodes(), 0);
        assert_eq!(b.dropped_self_loops(), 1);
        b.add_edge(0, 1);
        assert_eq!(b.num_nodes(), 2);
        // grow_to remains the explicit way to reserve the id
        b.grow_to(10);
        let g = b.build();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn grow_to_adds_isolated_nodes() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.grow_to(10);
        let g = b.build();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn grow_to_never_shrinks() {
        let mut b = GraphBuilder::new();
        b.add_edge(5, 6);
        b.grow_to(2);
        assert_eq!(b.num_nodes(), 7);
    }

    #[test]
    fn from_edges_roundtrip() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]).build();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn adjacency_sorted_after_build() {
        // Insert edges in an order designed to interleave fills.
        let g = GraphBuilder::from_edges([(5, 0), (0, 3), (0, 1), (4, 0), (0, 2)]).build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(16);
        b.add_edge(0, 1);
        assert_eq!(b.staged_edges(), 1);
        assert_eq!(b.build().num_edges(), 1);
    }
}
