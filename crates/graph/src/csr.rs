//! The frozen CSR graph representation.

use crate::NodeId;

/// An undirected graph in compressed-sparse-row form.
///
/// Invariants (established by [`crate::GraphBuilder`] and preserved by
/// every operation in this crate):
///
/// - node ids are dense: `0..num_nodes()`,
/// - each adjacency list is sorted ascending with no duplicates,
/// - adjacency is symmetric (`u∈adj(v)` ⇔ `v∈adj(u)`),
/// - no self-loops.
///
/// `num_edges()` counts *undirected* edges (the paper's `m`); the
/// underlying arrays store each edge twice (once per endpoint).
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    targets: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph directly from CSR parts.
    ///
    /// This is the low-level constructor used by [`crate::GraphBuilder`]
    /// and the binary loader; it debug-asserts the invariants rather
    /// than repairing input. Prefer [`crate::GraphBuilder`].
    ///
    /// # Panics
    ///
    /// Panics if the arrays are structurally inconsistent (wrong offset
    /// bounds). Semantic invariants (sortedness, symmetry) are checked
    /// only under `debug_assertions`; use [`Graph::validate`] to check
    /// them explicitly on untrusted input.
    pub fn from_csr(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n+1 entries");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len(),
            "offsets must end at targets.len()"
        );
        let g = Graph { offsets, targets };
        debug_assert!(g.validate().is_ok(), "{:?}", g.validate());
        g
    }

    /// Constructs from CSR parts without any semantic checking. Only
    /// for loaders that run [`Graph::validate`] themselves on the
    /// result before handing it out.
    pub(crate) fn from_csr_unchecked(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        Graph { offsets, targets }
    }

    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Number of nodes (the paper's `n`).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (the paper's `m`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sum of all degrees, i.e. `2m`.
    #[inline]
    pub fn total_degree(&self) -> usize {
        self.targets.len()
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (probe, list) = if self.degree(u) <= self.degree(v) {
            (v, self.neighbors(u))
        } else {
            (u, self.neighbors(v))
        };
        list.binary_search(&probe).is_ok()
    }

    /// Iterates every undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterates node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Maximum degree, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree, or 0 for an empty graph.
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Average degree `2m/n`, or 0.0 for an empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.total_degree() as f64 / self.num_nodes() as f64
        }
    }

    /// The raw offsets array (`n+1` entries). Exposed for zero-copy
    /// consumers such as the linear-operator wrappers.
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated adjacency array (`2m` entries).
    #[inline]
    pub fn raw_targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Checks all semantic invariants, returning the first violation.
    pub fn validate(&self) -> Result<(), GraphInvariantError> {
        use GraphInvariantError::*;
        let n = self.num_nodes();
        for v in 0..n as NodeId {
            let adj = self.neighbors(v);
            for w in adj.windows(2) {
                if w[0] >= w[1] {
                    return Err(UnsortedOrDuplicate { node: v });
                }
            }
            for &u in adj {
                if u as usize >= n {
                    return Err(TargetOutOfRange { node: v, target: u });
                }
                if u == v {
                    return Err(SelfLoop { node: v });
                }
                if self.neighbors(u).binary_search(&v).is_err() {
                    return Err(Asymmetric { from: v, to: u });
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.num_nodes())
            .field("edges", &self.num_edges())
            .finish()
    }
}

/// An invariant violation found by [`Graph::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphInvariantError {
    /// An adjacency list is unsorted or contains a duplicate.
    UnsortedOrDuplicate { node: NodeId },
    /// A target id is ≥ the node count.
    TargetOutOfRange { node: NodeId, target: NodeId },
    /// A node lists itself as a neighbor.
    SelfLoop { node: NodeId },
    /// `to ∈ adj(from)` but `from ∉ adj(to)`.
    Asymmetric { from: NodeId, to: NodeId },
}

impl std::fmt::Display for GraphInvariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnsortedOrDuplicate { node } => {
                write!(
                    f,
                    "adjacency list of node {node} is unsorted or has duplicates"
                )
            }
            Self::TargetOutOfRange { node, target } => {
                write!(f, "node {node} points to out-of-range target {target}")
            }
            Self::SelfLoop { node } => write!(f, "node {node} has a self-loop"),
            Self::Asymmetric { from, to } => {
                write!(f, "edge {from}->{to} present but {to}->{from} missing")
            }
        }
    }
}

impl std::error::Error for GraphInvariantError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.total_degree(), 6);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle();
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build();
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = triangle();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn degree_extremes() {
        let mut b = GraphBuilder::new();
        // star: center 0 with 4 leaves
        for v in 1..=4 {
            b.add_edge(0, v);
        }
        let g = b.build();
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 1);
        assert!((g.avg_degree() - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_asymmetric() {
        let g = Graph {
            offsets: vec![0, 1, 1],
            targets: vec![1],
        };
        assert!(matches!(
            g.validate(),
            Err(GraphInvariantError::Asymmetric { from: 0, to: 1 })
        ));
    }

    #[test]
    fn validate_rejects_self_loop() {
        let g = Graph {
            offsets: vec![0, 1],
            targets: vec![0],
        };
        assert!(matches!(
            g.validate(),
            Err(GraphInvariantError::SelfLoop { node: 0 })
        ));
    }

    #[test]
    fn validate_rejects_unsorted() {
        let g = Graph {
            offsets: vec![0, 2, 3, 4],
            targets: vec![2, 1, 0, 0],
        };
        assert!(matches!(
            g.validate(),
            Err(GraphInvariantError::UnsortedOrDuplicate { node: 0 })
        ));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let g = Graph {
            offsets: vec![0, 1],
            targets: vec![9],
        };
        assert!(matches!(
            g.validate(),
            Err(GraphInvariantError::TargetOutOfRange { node: 0, target: 9 })
        ));
    }

    #[test]
    #[should_panic]
    fn from_csr_rejects_bad_offsets() {
        let _ = Graph::from_csr(vec![0, 5], vec![1]);
    }
}
