//! Induced subgraphs with id relabeling.

use crate::{Graph, GraphBuilder, NodeId};

/// Mapping between original node ids and the dense ids of an extracted
/// subgraph.
///
/// Every extraction in this crate (largest component, trimming, BFS
/// sampling) returns one of these alongside the new [`Graph`], so that
/// measurements on the subgraph can be reported against original ids.
#[derive(Debug, Clone)]
pub struct NodeMapping {
    /// `to_original[new_id] = old_id`; sorted ascending.
    to_original: Vec<NodeId>,
}

impl NodeMapping {
    /// Builds a mapping from a sorted, deduplicated list of kept
    /// original ids.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `kept` is not strictly increasing.
    pub fn from_sorted(kept: Vec<NodeId>) -> Self {
        debug_assert!(
            kept.windows(2).all(|w| w[0] < w[1]),
            "kept ids must be strictly sorted"
        );
        NodeMapping { to_original: kept }
    }

    /// Number of nodes in the subgraph.
    pub fn len(&self) -> usize {
        self.to_original.len()
    }

    /// Whether the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.to_original.is_empty()
    }

    /// Original id of subgraph node `new_id`.
    pub fn original(&self, new_id: NodeId) -> NodeId {
        self.to_original[new_id as usize]
    }

    /// Subgraph id of `old_id`, or `None` if it was dropped.
    pub fn new_id(&self, old_id: NodeId) -> Option<NodeId> {
        self.to_original
            .binary_search(&old_id)
            .ok()
            .map(|i| i as NodeId)
    }

    /// The sorted original ids kept by the extraction.
    pub fn kept(&self) -> &[NodeId] {
        &self.to_original
    }

    /// Composes two extraction stages into one mapping.
    ///
    /// If `self` maps stage-1 ids to original ids and `second` maps
    /// stage-2 ids to stage-1 ids (a further extraction performed on
    /// the stage-1 subgraph), the result maps stage-2 ids straight to
    /// original ids — so a pipeline like *compact → largest component
    /// → trim* can report against the raw input ids with one lookup.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `second` references stage-1 ids outside
    /// `self`.
    pub fn compose(&self, second: &NodeMapping) -> NodeMapping {
        let to_original = second
            .kept()
            .iter()
            .map(|&mid| self.original(mid))
            .collect();
        // `self.to_original` is sorted and `second.kept()` is sorted,
        // so the composition is sorted too; `from_sorted` re-checks in
        // debug builds.
        NodeMapping::from_sorted(to_original)
    }
}

/// Extracts the subgraph induced by `keep` (any order, duplicates
/// ignored), relabeling nodes to dense ids.
///
/// Returns the subgraph and the id mapping. Edges are kept iff both
/// endpoints are kept.
pub fn induced_subgraph(g: &Graph, keep: &[NodeId]) -> (Graph, NodeMapping) {
    let mut kept: Vec<NodeId> = keep.to_vec();
    kept.sort_unstable();
    kept.dedup();
    let mapping = NodeMapping::from_sorted(kept);

    // Dense reverse map for O(1) membership; UNSET sentinel.
    const UNSET: NodeId = NodeId::MAX;
    let mut rev = vec![UNSET; g.num_nodes()];
    for (new_id, &old) in mapping.kept().iter().enumerate() {
        rev[old as usize] = new_id as NodeId;
    }

    let mut b = GraphBuilder::new();
    b.grow_to(mapping.len());
    for (new_u, &old_u) in mapping.kept().iter().enumerate() {
        for &old_v in g.neighbors(old_u) {
            let new_v = rev[old_v as usize];
            if new_v != UNSET && (new_u as NodeId) < new_v {
                b.add_edge(new_u as NodeId, new_v);
            }
        }
    }
    (b.build(), mapping)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_tail() -> Graph {
        // 0-1-2-3-0 square, tail 3-4
        GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (3, 4)]).build()
    }

    #[test]
    fn keeps_internal_edges_only() {
        let g = square_with_tail();
        let (sub, map) = induced_subgraph(&g, &[0, 1, 2, 3]);
        assert_eq!(sub.num_nodes(), 4);
        assert_eq!(sub.num_edges(), 4);
        assert!(map.new_id(4).is_none());
    }

    #[test]
    fn relabels_densely() {
        let g = square_with_tail();
        let (sub, map) = induced_subgraph(&g, &[1, 3, 4]);
        assert_eq!(sub.num_nodes(), 3);
        // only 3-4 survives (1-3 is not an edge)
        assert_eq!(sub.num_edges(), 1);
        let n3 = map.new_id(3).unwrap();
        let n4 = map.new_id(4).unwrap();
        assert!(sub.has_edge(n3, n4));
        assert_eq!(map.original(n3), 3);
    }

    #[test]
    fn duplicates_and_order_ignored() {
        let g = square_with_tail();
        let (a, _) = induced_subgraph(&g, &[3, 0, 0, 1, 2, 3]);
        let (b, _) = induced_subgraph(&g, &[0, 1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_keep_set() {
        let g = square_with_tail();
        let (sub, map) = induced_subgraph(&g, &[]);
        assert_eq!(sub.num_nodes(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn full_keep_set_is_identity() {
        let g = square_with_tail();
        let all: Vec<NodeId> = g.nodes().collect();
        let (sub, map) = induced_subgraph(&g, &all);
        assert_eq!(sub, g);
        for v in g.nodes() {
            assert_eq!(map.new_id(v), Some(v));
            assert_eq!(map.original(v), v);
        }
    }

    #[test]
    fn mapping_roundtrip() {
        let g = square_with_tail();
        let (_, map) = induced_subgraph(&g, &[2, 4]);
        for new_id in 0..map.len() as NodeId {
            assert_eq!(map.new_id(map.original(new_id)), Some(new_id));
        }
    }
}
