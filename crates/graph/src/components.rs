//! Connected components and largest-component extraction.
//!
//! The mixing time is undefined for disconnected graphs, so the paper
//! (like every Sybil-defense work it studies) measures on the largest
//! connected component (LCC). [`largest_component`] is that
//! preprocessing step.

use crate::subgraph::{induced_subgraph, NodeMapping};
use crate::{Graph, NodeId, UnionFind};
use std::collections::VecDeque;

/// Per-node component labels plus component sizes.
#[derive(Debug, Clone)]
pub struct Components {
    /// `label[v]` ∈ `0..num_components`; labels are assigned in
    /// discovery order of a scan from node 0.
    pub label: Vec<u32>,
    /// `sizes[c]` = number of nodes with label `c`.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Label of the largest component (ties broken by smallest label).
    pub fn largest(&self) -> u32 {
        self.sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }

    /// Nodes belonging to component `c`, ascending.
    pub fn members(&self, c: u32) -> Vec<NodeId> {
        self.label
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == c)
            .map(|(v, _)| v as NodeId)
            .collect()
    }
}

/// Labels connected components by repeated BFS.
pub fn connected_components(g: &Graph) -> Components {
    const UNLABELED: u32 = u32::MAX;
    let n = g.num_nodes();
    let mut label = vec![UNLABELED; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n as NodeId {
        if label[start as usize] != UNLABELED {
            continue;
        }
        let c = sizes.len() as u32;
        let mut size = 0usize;
        label[start as usize] = c;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if label[v as usize] == UNLABELED {
                    label[v as usize] = c;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { label, sizes }
}

/// Counts components with union-find — an independent implementation
/// used by tests to cross-check [`connected_components`].
pub fn count_components_unionfind(g: &Graph) -> usize {
    let mut uf = UnionFind::new(g.num_nodes());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    uf.num_components()
}

/// Whether the graph is connected (a zero-node graph counts as
/// connected).
pub fn is_connected(g: &Graph) -> bool {
    g.num_nodes() == 0 || connected_components(g).count() == 1
}

/// Extracts the largest connected component as a relabeled graph.
///
/// Returns the component and the mapping back to original ids. On an
/// empty graph returns an empty graph.
pub fn largest_component(g: &Graph) -> (Graph, NodeMapping) {
    if g.num_nodes() == 0 {
        return (Graph::empty(0), NodeMapping::from_sorted(Vec::new()));
    }
    let comps = connected_components(g);
    let members = comps.members(comps.largest());
    induced_subgraph(g, &members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_components() -> Graph {
        // triangle {0,1,2} + path {3,4}; node 5 isolated
        let mut b = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (3, 4)]);
        b.grow_to(6);
        b.build()
    }

    #[test]
    fn labels_and_sizes() {
        let c = connected_components(&two_components());
        assert_eq!(c.count(), 3);
        assert_eq!(c.sizes, vec![3, 2, 1]);
        assert_eq!(c.label[0], c.label[2]);
        assert_ne!(c.label[0], c.label[3]);
    }

    #[test]
    fn largest_picks_triangle() {
        let c = connected_components(&two_components());
        assert_eq!(c.largest(), 0);
        assert_eq!(c.members(0), vec![0, 1, 2]);
    }

    #[test]
    fn largest_tie_breaks_to_first() {
        let g = GraphBuilder::from_edges([(0, 1), (2, 3)]).build();
        let c = connected_components(&g);
        assert_eq!(c.sizes, vec![2, 2]);
        assert_eq!(c.largest(), 0);
    }

    #[test]
    fn unionfind_agrees_with_bfs() {
        let g = two_components();
        assert_eq!(
            count_components_unionfind(&g),
            connected_components(&g).count()
        );
    }

    #[test]
    fn is_connected_cases() {
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&GraphBuilder::from_edges([(0, 1)]).build()));
        assert!(!is_connected(&two_components()));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn lcc_extraction() {
        let (lcc, map) = largest_component(&two_components());
        assert_eq!(lcc.num_nodes(), 3);
        assert_eq!(lcc.num_edges(), 3);
        assert!(is_connected(&lcc));
        assert_eq!(map.kept(), &[0, 1, 2]);
    }

    #[test]
    fn lcc_of_empty_graph() {
        let (lcc, map) = largest_component(&Graph::empty(0));
        assert_eq!(lcc.num_nodes(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn lcc_of_connected_graph_is_identity() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2)]).build();
        let (lcc, _) = largest_component(&g);
        assert_eq!(lcc, g);
    }
}
