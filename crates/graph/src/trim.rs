//! Iterative low-degree trimming (degree core extraction).
//!
//! SybilGuard and SybilLimit preprocess their datasets by repeatedly
//! removing nodes of low degree; the IMC'10 paper reproduces this in its
//! Figure 6 (DBLP with minimum degree 1..5) and shows it trades graph
//! coverage for mixing speed. [`trim_min_degree`] is exactly that
//! operation: delete every node with degree < `d` and repeat until the
//! remaining graph has minimum degree ≥ `d` — i.e. the `d`-core.

use crate::subgraph::{induced_subgraph, NodeMapping};
use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Removes nodes of degree < `min_degree` iteratively until a fixpoint
/// (the `min_degree`-core), relabeling the survivors densely.
///
/// `min_degree <= 1` keeps all non-isolated structure intact except
/// isolated nodes when `min_degree == 1`; `min_degree == 0` is the
/// identity. The result can be disconnected even if the input was
/// connected — callers measuring mixing should re-extract the LCC
/// (see [`trim_to_lcc`]).
pub fn trim_min_degree(g: &Graph, min_degree: usize) -> (Graph, NodeMapping) {
    let n = g.num_nodes();
    if min_degree == 0 {
        let all: Vec<NodeId> = g.nodes().collect();
        return induced_subgraph(g, &all);
    }
    // Peeling: maintain residual degrees; queue nodes that fall below
    // the threshold. O(n + m).
    let mut deg: Vec<usize> = (0..n as NodeId).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut queue: VecDeque<NodeId> = (0..n as NodeId)
        .filter(|&v| deg[v as usize] < min_degree)
        .collect();
    for &v in &queue {
        removed[v as usize] = true;
    }
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if removed[v as usize] {
                continue;
            }
            deg[v as usize] -= 1;
            if deg[v as usize] < min_degree {
                removed[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    let kept: Vec<NodeId> = (0..n as NodeId).filter(|&v| !removed[v as usize]).collect();
    induced_subgraph(g, &kept)
}

/// Trims to the `min_degree`-core, then extracts the largest connected
/// component — the full SybilGuard/SybilLimit preprocessing pipeline.
///
/// The returned mapping composes both steps (subgraph ids → original
/// ids).
pub fn trim_to_lcc(g: &Graph, min_degree: usize) -> (Graph, NodeMapping) {
    let (core, map1) = trim_min_degree(g, min_degree);
    let (lcc, map2) = crate::components::largest_component(&core);
    let composed: Vec<NodeId> = map2.kept().iter().map(|&mid| map1.original(mid)).collect();
    (lcc, NodeMapping::from_sorted(composed))
}

/// Core number of every node (the largest `k` such that the node
/// survives in the `k`-core), via the standard peeling order.
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    // Bucket-sort peeling (Batagelj–Zaveršnik), O(n + m).
    let mut deg: Vec<usize> = (0..n as NodeId).map(|v| g.degree(v)).collect();
    let maxd = *deg.iter().max().unwrap();
    let mut bins = vec![0usize; maxd + 2];
    for &d in &deg {
        bins[d] += 1;
    }
    let mut start = 0usize;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    // pos[v] = position of v in `order`; order sorted by current degree.
    let mut order = vec![0 as NodeId; n];
    let mut pos = vec![0usize; n];
    {
        let mut cursor = bins.clone();
        for v in 0..n {
            let d = deg[v];
            order[cursor[d]] = v as NodeId;
            pos[v] = cursor[d];
            cursor[d] += 1;
        }
    }
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = order[i];
        core[v as usize] = deg[v as usize] as u32;
        for &u in g.neighbors(v) {
            let (du, dv) = (deg[u as usize], deg[v as usize]);
            if du > dv {
                // Swap u toward the front of its degree bucket, then
                // shrink its degree.
                let pu = pos[u as usize];
                let pw = bins[du];
                let w = order[pw];
                if u != w {
                    order[pu] = w;
                    order[pw] = u;
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bins[du] += 1;
                deg[u as usize] -= 1;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;
    use crate::GraphBuilder;

    /// Triangle core with pendant chain: 3-4-5 hangs off node 0.
    fn triangle_with_chain() -> Graph {
        GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (4, 5)]).build()
    }

    #[test]
    fn trim_zero_is_identity() {
        let g = triangle_with_chain();
        let (t, map) = trim_min_degree(&g, 0);
        assert_eq!(t, g);
        assert_eq!(map.len(), g.num_nodes());
    }

    #[test]
    fn trim_one_drops_isolated_only() {
        let mut b = GraphBuilder::from_edges([(0, 1)]);
        b.grow_to(4);
        let g = b.build();
        let (t, map) = trim_min_degree(&g, 1);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(map.kept(), &[0, 1]);
    }

    #[test]
    fn trim_two_peels_chain_iteratively() {
        let g = triangle_with_chain();
        // degree-2 core: the chain 5,4,3 peels one after another.
        let (t, map) = trim_min_degree(&g, 2);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(map.kept(), &[0, 1, 2]);
        assert!(t.min_degree() >= 2);
    }

    #[test]
    fn trim_result_min_degree_invariant() {
        let g = triangle_with_chain();
        for d in 0..5 {
            let (t, _) = trim_min_degree(&g, d);
            assert!(t.num_nodes() == 0 || t.min_degree() >= d, "d={d}");
        }
    }

    #[test]
    fn trim_beyond_max_degree_empties() {
        let g = triangle_with_chain();
        let (t, map) = trim_min_degree(&g, 4);
        assert_eq!(t.num_nodes(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn trim_to_lcc_composes_mapping() {
        // two triangles {0,1,2} and {4,5,6} joined by pendant 3 on 0:
        // trimming d=2 leaves two disconnected triangles; LCC keeps one.
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (0, 3), (4, 5), (5, 6), (4, 6)])
            .build();
        let (t, map) = trim_to_lcc(&g, 2);
        assert_eq!(t.num_nodes(), 3);
        assert!(is_connected(&t));
        // mapping must point back into one of the two triangles
        let kept = map.kept();
        assert!(kept == [0, 1, 2] || kept == [4, 5, 6]);
    }

    #[test]
    fn core_numbers_on_mixed_graph() {
        let g = triangle_with_chain();
        let core = core_numbers(&g);
        assert_eq!(core[0], 2);
        assert_eq!(core[1], 2);
        assert_eq!(core[2], 2);
        assert_eq!(core[3], 1);
        assert_eq!(core[4], 1);
        assert_eq!(core[5], 1);
    }

    #[test]
    fn core_numbers_agree_with_trim() {
        // Node survives trim(d) iff core number >= d.
        let g = GraphBuilder::from_edges([
            (0, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (4, 2),
            (0, 3),
            (5, 0),
        ])
        .build();
        let core = core_numbers(&g);
        for d in 0..4usize {
            let (_, map) = trim_min_degree(&g, d);
            let survivors: Vec<_> = map.kept().to_vec();
            let expect: Vec<NodeId> = (0..g.num_nodes() as NodeId)
                .filter(|&v| core[v as usize] as usize >= d)
                .collect();
            assert_eq!(survivors, expect, "d={d}");
        }
    }

    #[test]
    fn core_numbers_empty_graph() {
        assert!(core_numbers(&Graph::empty(0)).is_empty());
    }

    #[test]
    fn complete_graph_core() {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        assert!(core_numbers(&g).iter().all(|&c| c == 4));
    }
}
