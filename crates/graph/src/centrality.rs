//! Betweenness centrality (Brandes' algorithm).
//!
//! The paper's introduction points at defenses built on *node
//! betweenness* — "an indicator of how a node is well-situated on the
//! path between other nodes" (Quercia & Hailes' Sybil defense, Daly &
//! Haahr's routing). This module provides the exact Brandes algorithm
//! and the standard pivot-sampled approximation, so those designs'
//! substrate is available next to the mixing-time machinery.

use crate::{Graph, NodeId};
use rand::Rng;
use std::collections::VecDeque;

/// Exact betweenness centrality of every node (Brandes, 2001).
///
/// Unweighted shortest paths; endpoints excluded (the standard
/// convention). Undirected graphs: each pair is counted once, i.e.
/// raw dependencies are halved. Cost O(n·m).
///
/// # Example
///
/// ```
/// // the middle of a path lies on the most shortest paths
/// let g = socmix_graph::GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3), (3, 4)]).build();
/// let b = socmix_graph::centrality::betweenness(&g);
/// assert_eq!(b[2], 4.0);
/// ```
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut centrality = vec![0.0f64; n];
    let mut state = BrandesState::new(n);
    for s in g.nodes() {
        state.accumulate_from(g, s, &mut centrality);
    }
    for c in &mut centrality {
        *c /= 2.0; // undirected: each pair counted twice
    }
    centrality
}

/// Pivot-sampled betweenness: exact dependency accumulation from
/// `pivots` random sources, scaled by `n/pivots` — unbiased, with
/// error shrinking as pivots grow. Use for graphs where O(n·m) is too
/// slow.
pub fn betweenness_sampled<R: Rng + ?Sized>(g: &Graph, pivots: usize, rng: &mut R) -> Vec<f64> {
    let n = g.num_nodes();
    assert!(pivots > 0 && n > 0);
    let mut centrality = vec![0.0f64; n];
    let mut state = BrandesState::new(n);
    for _ in 0..pivots {
        let s = rng.random_range(0..n as NodeId);
        state.accumulate_from(g, s, &mut centrality);
    }
    let scale = n as f64 / pivots as f64 / 2.0;
    for c in &mut centrality {
        *c *= scale;
    }
    centrality
}

/// Reusable scratch buffers for Brandes' per-source pass.
struct BrandesState {
    sigma: Vec<f64>,
    dist: Vec<i64>,
    delta: Vec<f64>,
    preds: Vec<Vec<NodeId>>,
    order: Vec<NodeId>,
}

impl BrandesState {
    fn new(n: usize) -> Self {
        BrandesState {
            sigma: vec![0.0; n],
            dist: vec![-1; n],
            delta: vec![0.0; n],
            preds: vec![Vec::new(); n],
            order: Vec::with_capacity(n),
        }
    }

    /// One source's BFS + dependency accumulation into `centrality`.
    fn accumulate_from(&mut self, g: &Graph, s: NodeId, centrality: &mut [f64]) {
        let BrandesState {
            sigma,
            dist,
            delta,
            preds,
            order,
        } = self;
        // reset only what the previous pass touched
        for &v in order.iter() {
            sigma[v as usize] = 0.0;
            dist[v as usize] = -1;
            delta[v as usize] = 0.0;
            preds[v as usize].clear();
        }
        order.clear();
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let dv = dist[v as usize];
            for &w in g.neighbors(v) {
                if dist[w as usize] < 0 {
                    dist[w as usize] = dv + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dv + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    preds[w as usize].push(v);
                }
            }
        }
        // accumulate dependencies in reverse BFS order
        for &w in order.iter().rev() {
            let coeff = (1.0 + delta[w as usize]) / sigma[w as usize];
            for &v in &preds[w as usize] {
                delta[v as usize] += sigma[v as usize] * coeff;
            }
            if w != s {
                centrality[w as usize] += delta[w as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn path_betweenness_closed_form() {
        // path 0-1-2-3-4: b(i) = (i)·(n-1-i) pairs through i
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3), (3, 4)]).build();
        let b = betweenness(&g);
        assert_close(b[0], 0.0, 1e-12);
        assert_close(b[1], 3.0, 1e-12);
        assert_close(b[2], 4.0, 1e-12);
        assert_close(b[3], 3.0, 1e-12);
        assert_close(b[4], 0.0, 1e-12);
    }

    #[test]
    fn star_center_dominates() {
        let g = GraphBuilder::from_edges([(0, 1), (0, 2), (0, 3), (0, 4)]).build();
        let b = betweenness(&g);
        // center lies on C(4,2) = 6 pairs
        assert_close(b[0], 6.0, 1e-12);
        for &bv in &b[1..5] {
            assert_close(bv, 0.0, 1e-12);
        }
    }

    #[test]
    fn cycle_betweenness_uniform() {
        let mut bgraph = GraphBuilder::new();
        let n = 8u32;
        for i in 0..n {
            bgraph.add_edge(i, (i + 1) % n);
        }
        let g = bgraph.build();
        let b = betweenness(&g);
        for v in 1..n as usize {
            assert_close(b[v], b[0], 1e-9);
        }
        assert!(b[0] > 0.0);
    }

    #[test]
    fn complete_graph_zero_betweenness() {
        let mut bgraph = GraphBuilder::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                bgraph.add_edge(u, v);
            }
        }
        let b = betweenness(&bgraph.build());
        for x in b {
            assert_close(x, 0.0, 1e-12);
        }
    }

    #[test]
    fn split_shortest_paths_counted_fractionally() {
        // square 0-1-2-3-0: two shortest paths between opposite
        // corners, each middle node gets 1/2 per pair
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]).build();
        let b = betweenness(&g);
        for &bv in &b[..4] {
            assert_close(bv, 0.5, 1e-12);
        }
    }

    #[test]
    fn bridge_node_has_high_betweenness() {
        // two triangles joined through node 3
        let g = GraphBuilder::from_edges([
            (0, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (4, 6),
        ])
        .build();
        let b = betweenness(&g);
        let max = b.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            b[3] >= max - 1e-9 || b[4] >= max - 1e-9,
            "bridge should top: {b:?}"
        );
    }

    #[test]
    fn sampled_with_all_pivots_matches_exact_scaling() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3), (1, 3), (3, 4)]).build();
        let exact = betweenness(&g);
        let mut rng = StdRng::seed_from_u64(0);
        // many pivots → close to exact
        let approx = betweenness_sampled(&g, 4000, &mut rng);
        for (a, e) in approx.iter().zip(&exact) {
            assert!(
                (a - e).abs() < 0.35 * (e.max(1.0)),
                "approx {a} vs exact {e}"
            );
        }
    }

    #[test]
    fn disconnected_components_independent() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (3, 4), (4, 5)]).build();
        let b = betweenness(&g);
        assert_close(b[1], 1.0, 1e-12);
        assert_close(b[4], 1.0, 1e-12);
        assert_close(b[0], 0.0, 1e-12);
    }
}
