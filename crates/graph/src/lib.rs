//! Compact undirected-graph substrate for social-graph measurements.
//!
//! This crate provides the graph layer that every other `socmix` crate
//! builds on. It mirrors the preprocessing pipeline of *Measuring the
//! Mixing Time of Social Graphs* (IMC 2010):
//!
//! 1. load an edge list (directed edges are symmetrized, because the
//!    random-walk theory in the paper is for undirected graphs) —
//!    [`io`],
//! 2. extract the largest connected component (the mixing time is
//!    undefined on a disconnected graph) — [`components`],
//! 3. optionally trim low-degree nodes, the SybilGuard/SybilLimit
//!    preprocessing the paper studies in its Figure 6 — [`trim`],
//! 4. optionally take a BFS sample of a fixed node count, the paper's
//!    sampler for its 10K/100K/1000K subgraphs — [`sample`].
//!
//! The central type is [`Graph`], a frozen CSR (compressed sparse row)
//! structure with `u32` node ids and sorted adjacency lists. Graphs are
//! constructed through [`GraphBuilder`], which owns the mutation policy
//! (deduplication, self-loop removal, symmetrization) so that a `Graph`
//! can guarantee its invariants:
//!
//! - adjacency is symmetric: `v ∈ adj(u)` ⇔ `u ∈ adj(v)`,
//! - adjacency lists are sorted and duplicate-free,
//! - there are no self-loops.
//!
//! # Example
//!
//! ```
//! use socmix_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! let g = b.build();
//! assert_eq!(g.num_nodes(), 3);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.degree(1), 2);
//! assert!(g.has_edge(0, 2));
//! ```

mod builder;
pub mod centrality;
pub mod components;
mod csr;
pub mod flow;
pub mod io;
pub mod sample;
pub mod stats;
pub mod subgraph;
pub mod traversal;
pub mod trim;
mod unionfind;

pub use builder::GraphBuilder;
pub use csr::Graph;
pub use subgraph::NodeMapping;
pub use unionfind::UnionFind;

/// Node identifier. `u32` caps graphs at ~4.29 billion nodes, far above
/// the paper's largest dataset (1.13M nodes), while halving the memory
/// of adjacency arrays relative to `usize` on 64-bit targets.
pub type NodeId = u32;
