//! Maximum flow (Dinic's algorithm) on integer-capacity networks.
//!
//! Substrate for SumUp (`socmix-sybil`), the vote-aggregation Sybil
//! defense the paper's §2 cites among the systems Viswanath compared:
//! SumUp bounds Sybil votes by computing a max-flow from voters to a
//! collector over a capacity-assigned social graph. Dinic's algorithm
//! gives O(E·√V) on the unit-ish capacities SumUp uses.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// A directed flow network under construction / being solved.
///
/// Nodes are dense `0..n`; edges are added directed with integer
/// capacity (each insert also creates the 0-capacity residual twin).
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// head[v] -> first edge index, linked by `next`
    head: Vec<i64>,
    next: Vec<i64>,
    to: Vec<u32>,
    cap: Vec<i64>,
}

impl FlowNetwork {
    /// An empty network on `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            head: vec![-1; n],
            next: Vec::new(),
            to: Vec::new(),
            cap: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.head.len()
    }

    /// Adds a directed edge `u → v` with the given capacity (and its
    /// residual twin). Returns the edge index (its twin is `idx ^ 1`).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, capacity: i64) -> usize {
        assert!(capacity >= 0, "capacities must be non-negative");
        let idx = self.to.len();
        // forward
        self.to.push(v);
        self.cap.push(capacity);
        self.next.push(self.head[u as usize]);
        self.head[u as usize] = idx as i64;
        // residual
        self.to.push(u);
        self.cap.push(0);
        self.next.push(self.head[v as usize]);
        self.head[v as usize] = (idx + 1) as i64;
        idx
    }

    /// Adds an *undirected* edge as two directed edges of the same
    /// capacity (flow may use either direction up to `capacity`).
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId, capacity: i64) {
        self.add_edge(u, v, capacity);
        self.add_edge(v, u, capacity);
    }

    /// Remaining capacity of edge `idx` (decreases as flow is pushed).
    pub fn residual(&self, idx: usize) -> i64 {
        self.cap[idx]
    }

    /// Computes the maximum `source → sink` flow (Dinic), mutating the
    /// residual capacities in place.
    pub fn max_flow(&mut self, source: NodeId, sink: NodeId) -> i64 {
        assert_ne!(source, sink, "source and sink must differ");
        let n = self.num_nodes();
        let mut total = 0i64;
        let mut level = vec![-1i32; n];
        let mut iter = vec![0i64; n];
        loop {
            // BFS levels on the residual graph
            level.iter_mut().for_each(|l| *l = -1);
            level[source as usize] = 0;
            let mut q = VecDeque::new();
            q.push_back(source);
            while let Some(u) = q.pop_front() {
                let mut e = self.head[u as usize];
                while e >= 0 {
                    let ei = e as usize;
                    let v = self.to[ei] as usize;
                    if self.cap[ei] > 0 && level[v] < 0 {
                        level[v] = level[u as usize] + 1;
                        q.push_back(v as NodeId);
                    }
                    e = self.next[ei];
                }
            }
            if level[sink as usize] < 0 {
                break;
            }
            iter.copy_from_slice(&self.head);
            loop {
                let pushed = self.dfs(source, sink, i64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }

    /// Blocking-flow DFS along level-increasing residual edges.
    fn dfs(&mut self, u: NodeId, sink: NodeId, limit: i64, level: &[i32], iter: &mut [i64]) -> i64 {
        if u == sink {
            return limit;
        }
        while iter[u as usize] >= 0 {
            let ei = iter[u as usize] as usize;
            let v = self.to[ei];
            if self.cap[ei] > 0 && level[v as usize] == level[u as usize] + 1 {
                let pushed = self.dfs(v, sink, limit.min(self.cap[ei]), level, iter);
                if pushed > 0 {
                    self.cap[ei] -= pushed;
                    self.cap[ei ^ 1] += pushed;
                    return pushed;
                }
            }
            iter[u as usize] = self.next[ei];
        }
        0
    }
}

/// Maximum number of edge-disjoint paths between `s` and `t` in an
/// undirected graph (unit-capacity max-flow) — by Menger's theorem
/// also the edge connectivity between the pair.
///
/// # Example
///
/// ```
/// let mut b = socmix_graph::GraphBuilder::new();
/// for i in 0..10u32 {
///     b.add_edge(i, (i + 1) % 10); // a 10-cycle
/// }
/// let g = b.build();
/// assert_eq!(socmix_graph::flow::edge_disjoint_paths(&g, 0, 5), 2);
/// ```
pub fn edge_disjoint_paths(g: &Graph, s: NodeId, t: NodeId) -> i64 {
    let mut net = FlowNetwork::new(g.num_nodes());
    for (u, v) in g.edges() {
        net.add_undirected_edge(u, v, 1);
    }
    net.max_flow(s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn single_path() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        net.add_edge(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(0, 2, 3);
        net.add_edge(2, 3, 3);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn classic_crossing_network() {
        // the textbook network where the naive greedy needs the
        // residual cross edge
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn disconnected_gives_zero() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 7);
        net.add_edge(2, 3, 7);
        assert_eq!(net.max_flow(0, 3), 0);
    }

    #[test]
    fn bottleneck_respected() {
        let mut net = FlowNetwork::new(5);
        net.add_edge(0, 1, 100);
        net.add_edge(1, 2, 1);
        net.add_edge(2, 3, 100);
        net.add_edge(3, 4, 100);
        assert_eq!(net.max_flow(0, 4), 1);
    }

    #[test]
    fn undirected_edge_usable_both_ways() {
        let mut net = FlowNetwork::new(3);
        net.add_undirected_edge(0, 1, 2);
        net.add_undirected_edge(1, 2, 2);
        assert_eq!(net.max_flow(0, 2), 2);
        let mut net2 = FlowNetwork::new(3);
        net2.add_undirected_edge(0, 1, 2);
        net2.add_undirected_edge(1, 2, 2);
        assert_eq!(net2.max_flow(2, 0), 2, "symmetric in direction");
    }

    #[test]
    fn edge_disjoint_paths_on_cycle() {
        // a cycle offers exactly 2 edge-disjoint paths between any pair
        let mut b = GraphBuilder::new();
        for i in 0..8u32 {
            b.add_edge(i, (i + 1) % 8);
        }
        let g = b.build();
        assert_eq!(edge_disjoint_paths(&g, 0, 4), 2);
    }

    #[test]
    fn edge_disjoint_paths_on_complete_graph() {
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        // K_6: 5 edge-disjoint paths between any two nodes
        assert_eq!(edge_disjoint_paths(&g, 0, 3), 5);
    }

    #[test]
    fn bridge_limits_paths_to_one() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)])
            .build();
        assert_eq!(edge_disjoint_paths(&g, 0, 5), 1, "edge 2-3 is a bridge");
    }

    #[test]
    fn flow_conservation_via_cut() {
        // max-flow equals the capacity of the obvious cut
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 10);
        net.add_edge(0, 2, 10);
        net.add_edge(1, 3, 4);
        net.add_edge(2, 3, 9);
        net.add_edge(3, 4, 15);
        net.add_edge(4, 5, 10);
        assert_eq!(net.max_flow(0, 5), 10);
    }

    #[test]
    #[should_panic]
    fn negative_capacity_rejected() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, -1);
    }
}
