//! Union-find (disjoint-set) with path halving and union by size.

/// Disjoint-set forest over `0..n`.
///
/// Used by the connected-components pass as the non-BFS cross-check and
/// by generators that need to guarantee connectivity.
#[derive(Debug, Clone)]
pub struct UnionFind {
    /// parent[i] — root iff parent[i] == i.
    parent: Vec<u32>,
    /// size[i] valid only while i is a root.
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind capped at u32 ids");
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (path-halving).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.component_size(2), 1);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.component_size(1), 3);
    }

    #[test]
    fn union_all_gives_one_component() {
        let mut uf = UnionFind::new(100);
        for i in 1..100 {
            uf.union(0, i);
        }
        assert_eq!(uf.num_components(), 1);
        assert_eq!(uf.component_size(57), 100);
    }

    #[test]
    fn empty_is_empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
    }
}
