//! Descriptive graph statistics.
//!
//! The paper's Table 1 reports node/edge counts per dataset; the
//! catalog calibration in `socmix-gen` additionally matches degree
//! shape and clustering, which these helpers measure.

use crate::{Graph, NodeId};
use rand::Rng;

/// Summary statistics in the shape of the paper's Table 1 row plus the
/// structural quantities used for catalog calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub nodes: usize,
    pub edges: usize,
    pub min_degree: usize,
    pub max_degree: usize,
    pub avg_degree: f64,
    /// Exact global clustering coefficient (transitivity):
    /// `3·triangles / open-wedges`.
    pub transitivity: f64,
}

/// Computes [`GraphStats`] (exact; `transitivity` costs
/// O(Σ deg(v)·log·deg)).
pub fn graph_stats(g: &Graph) -> GraphStats {
    let (tri, wedges) = triangles_and_wedges(g);
    GraphStats {
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        min_degree: g.min_degree(),
        max_degree: g.max_degree(),
        avg_degree: g.avg_degree(),
        transitivity: if wedges == 0 {
            0.0
        } else {
            3.0 * tri as f64 / wedges as f64
        },
    }
}

/// Histogram of degrees: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Exact triangle count and wedge (path of length 2) count.
///
/// Triangles are counted once each using the ordered-neighbor
/// intersection trick: for every edge `(u,v)` with `u < v`, count
/// common neighbors `w > v`.
pub fn triangles_and_wedges(g: &Graph) -> (u64, u64) {
    let mut triangles = 0u64;
    for (u, v) in g.edges() {
        let (a, b) = (g.neighbors(u), g.neighbors(v));
        // two-pointer intersection restricted to w > v
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            let (x, y) = (a[i], b[j]);
            if x == y {
                if x > v {
                    triangles += 1;
                }
                i += 1;
                j += 1;
            } else if x < y {
                i += 1;
            } else {
                j += 1;
            }
        }
    }
    let wedges: u64 = g
        .nodes()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    (triangles, wedges)
}

/// Local clustering coefficient of one node.
pub fn local_clustering(g: &Graph, v: NodeId) -> f64 {
    let d = g.degree(v);
    if d < 2 {
        return 0.0;
    }
    let nbrs = g.neighbors(v);
    let mut links = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (d * (d - 1)) as f64
}

/// Average local clustering estimated over `samples` random nodes
/// (exact if `samples >= n`).
pub fn avg_clustering_sampled<R: Rng + ?Sized>(g: &Graph, samples: usize, rng: &mut R) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    if samples >= n {
        let total: f64 = g.nodes().map(|v| local_clustering(g, v)).sum();
        return total / n as f64;
    }
    let total: f64 = (0..samples)
        .map(|_| local_clustering(g, rng.random_range(0..n as NodeId)))
        .sum();
    total / samples as f64
}

/// Degree assortativity (Pearson correlation of degrees across edges).
///
/// Social networks are typically assortative (r > 0); web/technology
/// graphs disassortative. Returns 0 for degenerate graphs (no edges or
/// constant degree).
pub fn degree_assortativity(g: &Graph) -> f64 {
    let m2 = g.total_degree() as f64; // 2m directed half-edges
    if m2 == 0.0 {
        return 0.0;
    }
    // Pearson over directed half-edges (each undirected edge counted in
    // both orientations), the standard Newman formulation.
    let (mut sxy, mut sx, mut sx2) = (0.0f64, 0.0f64, 0.0f64);
    for u in g.nodes() {
        let du = g.degree(u) as f64;
        for &v in g.neighbors(u) {
            let dv = g.degree(v) as f64;
            sxy += du * dv;
            sx += du;
            sx2 += du * du;
        }
    }
    let num = sxy / m2 - (sx / m2) * (sx / m2);
    let den = sx2 / m2 - (sx / m2) * (sx / m2);
    if den.abs() < 1e-15 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn triangle() -> Graph {
        GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2)]).build()
    }

    fn path4() -> Graph {
        GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3)]).build()
    }

    #[test]
    fn triangle_counts() {
        let (t, w) = triangles_and_wedges(&triangle());
        assert_eq!(t, 1);
        assert_eq!(w, 3);
    }

    #[test]
    fn path_has_no_triangles() {
        let (t, w) = triangles_and_wedges(&path4());
        assert_eq!(t, 0);
        assert_eq!(w, 2);
    }

    #[test]
    fn transitivity_of_triangle_is_one() {
        let s = graph_stats(&triangle());
        assert!((s.transitivity - 1.0).abs() < 1e-12);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
    }

    #[test]
    fn transitivity_of_star_is_zero() {
        let star = GraphBuilder::from_edges([(0, 1), (0, 2), (0, 3)]).build();
        assert_eq!(graph_stats(&star).transitivity, 0.0);
    }

    #[test]
    fn complete_graph_triangle_count() {
        let mut b = GraphBuilder::new();
        let n = 6u32;
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v);
            }
        }
        let (t, _) = triangles_and_wedges(&b.build());
        assert_eq!(t, 20); // C(6,3)
    }

    #[test]
    fn degree_histogram_shape() {
        let h = degree_histogram(&path4());
        assert_eq!(h, vec![0, 2, 2]);
    }

    #[test]
    fn degree_histogram_empty() {
        assert_eq!(degree_histogram(&Graph::empty(0)), vec![0]);
    }

    #[test]
    fn local_clustering_cases() {
        let g = GraphBuilder::from_edges([(0, 1), (0, 2), (0, 3), (1, 2)]).build();
        assert!((local_clustering(&g, 0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, 3), 0.0); // degree 1
    }

    #[test]
    fn sampled_clustering_matches_exact_when_full() {
        let g = triangle();
        let mut rng = StdRng::seed_from_u64(0);
        let c = avg_clustering_sampled(&g, 100, &mut rng);
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assortativity_bounds() {
        // Star is maximally disassortative among these fixtures.
        let star = GraphBuilder::from_edges([(0, 1), (0, 2), (0, 3), (0, 4)]).build();
        let r = degree_assortativity(&star);
        assert!(
            r < 0.0 || r.abs() < 1e-9,
            "star should be non-assortative, got {r}"
        );
        // Regular graph: degenerate, defined as 0.
        let cyc = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]).build();
        assert_eq!(degree_assortativity(&cyc), 0.0);
    }

    #[test]
    fn assortativity_empty() {
        assert_eq!(degree_assortativity(&Graph::empty(3)), 0.0);
    }
}
