//! Subgraph sampling.
//!
//! The paper samples representative subgraphs of its four million-node
//! datasets "using the breadth first search (BFS) algorithm beginning
//! from a random node" to obtain 10K / 100K / 1000K node graphs
//! (Section 4, with the footnote that BFS biases samples toward
//! *faster* mixing — which only strengthens its slow-mixing
//! conclusion). [`bfs_sample`] reproduces that sampler; a random-walk
//! sampler is provided as an alternative for sensitivity analysis.

use crate::subgraph::{induced_subgraph, NodeMapping};
use crate::{Graph, NodeId};
use rand::Rng;
use std::collections::VecDeque;

/// BFS-samples up to `target` nodes starting from `seed` and returns
/// the induced subgraph.
///
/// The frontier is expanded in breadth-first order; expansion stops as
/// soon as `target` nodes have been collected (nodes already queued
/// beyond the cutoff are discarded). If the component containing
/// `seed` has fewer than `target` nodes the whole component is
/// returned.
pub fn bfs_sample(g: &Graph, seed: NodeId, target: usize) -> (Graph, NodeMapping) {
    assert_seed_in_range(g, seed, "bfs_sample");
    if target == 0 {
        return (Graph::empty(0), NodeMapping::from_sorted(Vec::new()));
    }
    let mut seen = vec![false; g.num_nodes()];
    let mut collected = Vec::with_capacity(target.min(g.num_nodes()));
    let mut queue = VecDeque::new();
    seen[seed as usize] = true;
    queue.push_back(seed);
    while let Some(u) = queue.pop_front() {
        collected.push(u);
        if collected.len() >= target {
            break;
        }
        for &v in g.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    induced_subgraph(g, &collected)
}

/// BFS sample from a uniformly random seed node.
pub fn bfs_sample_random<R: Rng + ?Sized>(
    g: &Graph,
    target: usize,
    rng: &mut R,
) -> (Graph, NodeMapping) {
    assert!(g.num_nodes() > 0, "cannot sample an empty graph");
    let seed = rng.random_range(0..g.num_nodes() as NodeId);
    bfs_sample(g, seed, target)
}

/// Collects up to `target` distinct nodes by running a simple random
/// walk from `seed` (restarting at `seed` when stuck on an isolated
/// node) and returns the induced subgraph.
///
/// Unlike BFS sampling this explores proportionally to stationary
/// probability mass, producing samples that are *less* biased toward a
/// tight, fast-mixing neighborhood; useful as a sensitivity check on
/// the paper's BFS choice.
pub fn walk_sample<R: Rng + ?Sized>(
    g: &Graph,
    seed: NodeId,
    target: usize,
    max_steps: usize,
    rng: &mut R,
) -> (Graph, NodeMapping) {
    assert_seed_in_range(g, seed, "walk_sample");
    let mut seen = vec![false; g.num_nodes()];
    let mut collected = Vec::new();
    let mut cur = seed;
    if target > 0 {
        seen[seed as usize] = true;
        collected.push(seed);
    }
    let mut steps = 0usize;
    while collected.len() < target && steps < max_steps {
        steps += 1;
        let nbrs = g.neighbors(cur);
        if nbrs.is_empty() {
            break;
        }
        cur = nbrs[rng.random_range(0..nbrs.len())];
        if !seen[cur as usize] {
            seen[cur as usize] = true;
            collected.push(cur);
        }
    }
    induced_subgraph(g, &collected)
}

/// Forest-fire sampling (Leskovec–Faloutsos): from `seed`, "burn"
/// a geometrically distributed number of unvisited neighbors of each
/// burning node (mean `p_forward/(1−p_forward)` per node), breadth
/// first, until `target` nodes are collected or the fire dies (then
/// reignite at a random unvisited node).
///
/// Unlike BFS, forest fire does not exhaustively take every frontier
/// node, so it preserves more of the original degree/community shape
/// — the standard sampler-sensitivity comparison to the paper's BFS
/// choice.
pub fn forest_fire_sample<R: Rng + ?Sized>(
    g: &Graph,
    seed: NodeId,
    target: usize,
    p_forward: f64,
    rng: &mut R,
) -> (Graph, NodeMapping) {
    assert_seed_in_range(g, seed, "forest_fire_sample");
    assert!(
        (0.0..1.0).contains(&p_forward),
        "p_forward must be in [0,1)"
    );
    if target == 0 {
        return (Graph::empty(0), NodeMapping::from_sorted(Vec::new()));
    }
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut collected = Vec::with_capacity(target.min(n));
    let mut queue = VecDeque::new();
    let ignite = |v: NodeId,
                  seen: &mut Vec<bool>,
                  collected: &mut Vec<NodeId>,
                  queue: &mut VecDeque<NodeId>| {
        if !seen[v as usize] {
            seen[v as usize] = true;
            collected.push(v);
            queue.push_back(v);
        }
    };
    ignite(seed, &mut seen, &mut collected, &mut queue);
    let mut scratch: Vec<NodeId> = Vec::new();
    while collected.len() < target.min(n) {
        let Some(u) = queue.pop_front() else {
            // fire died: reignite at a random unburned node
            let mut v = rng.random_range(0..n as NodeId);
            let mut guard = 0;
            while seen[v as usize] && guard < 4 * n {
                v = rng.random_range(0..n as NodeId);
                guard += 1;
            }
            if seen[v as usize] {
                break; // everything burned
            }
            ignite(v, &mut seen, &mut collected, &mut queue);
            continue;
        };
        // geometric number of forward burns with mean p/(1-p)
        let mut burns = 0usize;
        while rng.random::<f64>() < p_forward {
            burns += 1;
        }
        if burns == 0 {
            continue;
        }
        scratch.clear();
        scratch.extend(
            g.neighbors(u)
                .iter()
                .copied()
                .filter(|&v| !seen[v as usize]),
        );
        // burn a random subset of `burns` unvisited neighbors
        for _ in 0..burns.min(scratch.len()) {
            let i = rng.random_range(0..scratch.len());
            let v = scratch.swap_remove(i);
            ignite(v, &mut seen, &mut collected, &mut queue);
            if collected.len() >= target {
                break;
            }
        }
    }
    induced_subgraph(g, &collected)
}

/// Validates a sampler's starting node up front, so a bad seed fails
/// with a clear message instead of an index-out-of-bounds panic deep
/// inside the visited-set bookkeeping.
fn assert_seed_in_range(g: &Graph, seed: NodeId, sampler: &str) {
    assert!(
        (seed as usize) < g.num_nodes(),
        "{sampler}: seed node {seed} is out of range for a graph with {} nodes",
        g.num_nodes()
    );
}

/// A uniformly random node id.
pub fn random_node<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> NodeId {
    assert!(g.num_nodes() > 0, "empty graph has no nodes");
    rng.random_range(0..g.num_nodes() as NodeId)
}

/// `k` distinct uniformly random node ids (Floyd's algorithm).
///
/// # Panics
///
/// Panics if `k > g.num_nodes()`.
pub fn random_nodes<R: Rng + ?Sized>(g: &Graph, k: usize, rng: &mut R) -> Vec<NodeId> {
    let n = g.num_nodes();
    assert!(k <= n, "cannot draw {k} distinct nodes from {n}");
    // Floyd's sampling: O(k) expected, distinct by construction.
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.random_range(0..=j as NodeId);
        let pick = if chosen.insert(t) { t } else { j as NodeId };
        if pick != t {
            chosen.insert(pick);
        }
        out.push(pick);
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid(w: usize, h: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let id = |x: usize, y: usize| (y * w + x) as NodeId;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    b.add_edge(id(x, y), id(x + 1, y));
                }
                if y + 1 < h {
                    b.add_edge(id(x, y), id(x, y + 1));
                }
            }
        }
        b.build()
    }

    #[test]
    fn bfs_sample_exact_size() {
        let g = grid(10, 10);
        let (s, map) = bfs_sample(&g, 0, 25);
        assert_eq!(s.num_nodes(), 25);
        assert_eq!(map.len(), 25);
    }

    #[test]
    fn bfs_sample_is_connected_on_grid() {
        // BFS prefix of a connected graph induces a connected subgraph
        // (every sampled node reached through earlier sampled nodes).
        let g = grid(12, 12);
        for target in [1usize, 7, 50, 144] {
            let (s, _) = bfs_sample(&g, 5, target);
            assert!(is_connected(&s), "target={target}");
        }
    }

    #[test]
    fn bfs_sample_caps_at_component() {
        let mut b = GraphBuilder::from_edges([(0, 1), (1, 2)]);
        b.grow_to(10);
        let g = b.build();
        let (s, _) = bfs_sample(&g, 0, 100);
        assert_eq!(s.num_nodes(), 3);
    }

    #[test]
    fn bfs_sample_zero_target() {
        let g = grid(3, 3);
        let (s, _) = bfs_sample(&g, 0, 0);
        assert_eq!(s.num_nodes(), 0);
    }

    #[test]
    fn bfs_sample_contains_seed() {
        let g = grid(5, 5);
        let (_, map) = bfs_sample(&g, 13, 4);
        assert!(map.new_id(13).is_some());
    }

    #[test]
    fn walk_sample_collects_target() {
        let g = grid(8, 8);
        let mut rng = StdRng::seed_from_u64(7);
        let (s, _) = walk_sample(&g, 0, 20, 100_000, &mut rng);
        assert_eq!(s.num_nodes(), 20);
    }

    #[test]
    fn walk_sample_respects_step_budget() {
        let g = grid(8, 8);
        let mut rng = StdRng::seed_from_u64(7);
        let (s, _) = walk_sample(&g, 0, 64, 3, &mut rng);
        assert!(s.num_nodes() <= 4); // seed + at most 3 steps
    }

    #[test]
    fn forest_fire_reaches_target() {
        let g = grid(12, 12);
        let mut rng = StdRng::seed_from_u64(1);
        let (s, _) = forest_fire_sample(&g, 0, 50, 0.5, &mut rng);
        assert_eq!(s.num_nodes(), 50);
    }

    #[test]
    fn forest_fire_zero_target() {
        let g = grid(4, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let (s, _) = forest_fire_sample(&g, 0, 0, 0.5, &mut rng);
        assert_eq!(s.num_nodes(), 0);
    }

    #[test]
    fn forest_fire_caps_at_graph_size() {
        let g = grid(4, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let (s, _) = forest_fire_sample(&g, 0, 1000, 0.6, &mut rng);
        assert_eq!(s.num_nodes(), 16);
    }

    #[test]
    fn forest_fire_reignites_across_components() {
        let mut b = GraphBuilder::from_edges([(0, 1), (1, 2), (3, 4), (4, 5)]);
        b.grow_to(6);
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(3);
        let (s, _) = forest_fire_sample(&g, 0, 6, 0.7, &mut rng);
        assert_eq!(s.num_nodes(), 6, "must reignite into the other component");
    }

    #[test]
    fn forest_fire_deterministic() {
        let g = grid(10, 10);
        let a = forest_fire_sample(&g, 5, 40, 0.5, &mut StdRng::seed_from_u64(7));
        let b = forest_fire_sample(&g, 5, 40, 0.5, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn random_nodes_distinct_and_in_range() {
        let g = grid(6, 6);
        let mut rng = StdRng::seed_from_u64(42);
        let picks = random_nodes(&g, 20, &mut rng);
        assert_eq!(picks.len(), 20);
        let mut dedup = picks.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 20, "duplicates drawn");
        assert!(picks.iter().all(|&v| (v as usize) < g.num_nodes()));
    }

    #[test]
    fn random_nodes_full_population() {
        let g = grid(4, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let picks = random_nodes(&g, 16, &mut rng);
        assert_eq!(picks, (0..16).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bfs_sample: seed node 99 is out of range")]
    fn bfs_sample_rejects_out_of_range_seed() {
        let g = grid(3, 3);
        bfs_sample(&g, 99, 4);
    }

    #[test]
    #[should_panic(expected = "walk_sample: seed node 42 is out of range")]
    fn walk_sample_rejects_out_of_range_seed() {
        let g = grid(3, 3);
        walk_sample(&g, 42, 4, 100, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "forest_fire_sample: seed node 16 is out of range")]
    fn forest_fire_rejects_out_of_range_seed() {
        let g = grid(4, 4);
        forest_fire_sample(&g, 16, 4, 0.5, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn bfs_sample_random_deterministic_with_seed() {
        let g = grid(9, 9);
        let (a, _) = bfs_sample_random(&g, 30, &mut StdRng::seed_from_u64(5));
        let (b, _) = bfs_sample_random(&g, 30, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
