//! Breadth-first and depth-first traversal primitives.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Marker for "unreached" in distance arrays.
pub const UNREACHED: u32 = u32::MAX;

/// BFS from `source`, returning hop distances (`UNREACHED` where the
/// node is in another component).
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHED; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHED {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Nodes reachable from `source`, in BFS visit order (including
/// `source` itself first).
pub fn bfs_order(g: &Graph, source: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.num_nodes()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[source as usize] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Iterative DFS preorder from `source`.
///
/// Children are pushed in reverse adjacency order so the visit order
/// matches the natural recursive DFS that explores the smallest
/// neighbor first.
pub fn dfs_order(g: &Graph, source: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.num_nodes()];
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        if seen[u as usize] {
            continue;
        }
        seen[u as usize] = true;
        order.push(u);
        for &v in g.neighbors(u).iter().rev() {
            if !seen[v as usize] {
                stack.push(v);
            }
        }
    }
    order
}

/// Eccentricity of `source` within its component (max BFS distance).
pub fn eccentricity(g: &Graph, source: NodeId) -> u32 {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != UNREACHED)
        .max()
        .unwrap_or(0)
}

/// Lower bound on the diameter by the double-sweep heuristic: BFS from
/// `seed`, then BFS again from the farthest node found.
///
/// Exact on trees; a strong lower bound in practice on social graphs,
/// where computing the true diameter is quadratic.
pub fn pseudo_diameter(g: &Graph, seed: NodeId) -> u32 {
    let d1 = bfs_distances(g, seed);
    let far = d1
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHED)
        .max_by_key(|(_, &d)| d)
        .map(|(i, _)| i as NodeId)
        .unwrap_or(seed);
    eccentricity(g, far)
}

/// Attempts to 2-color the component containing `source`.
///
/// Returns `Some(colors)` (0/1 per node, `u8::MAX` for nodes outside
/// the component) when the component is bipartite, `None` when an
/// odd cycle exists. Bipartite components make the plain random walk
/// periodic, which is why the Markov layer checks this before taking
/// powers of `P` (see `socmix-markov`).
pub fn two_color(g: &Graph, source: NodeId) -> Option<Vec<u8>> {
    let mut color = vec![u8::MAX; g.num_nodes()];
    let mut queue = VecDeque::new();
    color[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let cu = color[u as usize];
        for &v in g.neighbors(u) {
            let cv = &mut color[v as usize];
            if *cv == u8::MAX {
                *cv = cu ^ 1;
                queue.push_back(v);
            } else if *cv == cu {
                return None;
            }
        }
    }
    Some(color)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path(n: usize) -> Graph {
        GraphBuilder::from_edges((0..n as NodeId - 1).map(|i| (i, i + 1))).build()
    }

    fn cycle(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..n as NodeId {
            b.add_edge(i, (i + 1) % n as NodeId);
        }
        b.build()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_marks_unreached() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHED);
        assert_eq!(d[3], UNREACHED);
    }

    #[test]
    fn bfs_order_visits_component_once() {
        let g = cycle(6);
        let order = bfs_order(&g, 0);
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn dfs_order_prefers_smallest_neighbor() {
        let g = path(4);
        assert_eq!(dfs_order(&g, 0), vec![0, 1, 2, 3]);
        // star from 0: visits leaves ascending
        let star = GraphBuilder::from_edges([(0, 1), (0, 2), (0, 3)]).build();
        assert_eq!(dfs_order(&star, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn eccentricity_path_end() {
        let g = path(7);
        assert_eq!(eccentricity(&g, 0), 6);
        assert_eq!(eccentricity(&g, 3), 3);
    }

    #[test]
    fn pseudo_diameter_exact_on_path() {
        let g = path(9);
        assert_eq!(pseudo_diameter(&g, 4), 8);
    }

    #[test]
    fn even_cycle_is_bipartite() {
        let g = cycle(8);
        let colors = two_color(&g, 0).expect("even cycle is bipartite");
        for (u, v) in g.edges() {
            assert_ne!(colors[u as usize], colors[v as usize]);
        }
    }

    #[test]
    fn odd_cycle_is_not_bipartite() {
        let g = cycle(7);
        assert!(two_color(&g, 0).is_none());
    }

    #[test]
    fn two_color_outside_component_is_unset() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build();
        let colors = two_color(&g, 0).unwrap();
        assert_eq!(colors[2], u8::MAX);
    }

    #[test]
    fn singleton_traversals() {
        let g = Graph::empty(1);
        assert_eq!(bfs_order(&g, 0), vec![0]);
        assert_eq!(dfs_order(&g, 0), vec![0]);
        assert_eq!(eccentricity(&g, 0), 0);
        assert!(two_color(&g, 0).is_some());
    }
}
