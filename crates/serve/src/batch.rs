//! Leader–follower coalescing of concurrent probe queries.
//!
//! Escape-probability probes against the same (graph, walk length)
//! pair are embarrassingly batchable: each is one column of a
//! [`MultiLinearOp::apply_multi`](socmix_linalg::MultiLinearOp) block,
//! and the batched kernel's per-column accumulation order matches the
//! width-1 kernel exactly, so batching changes *nothing* about the
//! answer bits — only how many CSR traversals the server pays.
//!
//! The protocol: the first query to arrive for a key opens a batch
//! cell and becomes its **leader**; it waits up to the batch window
//! (or until the batch fills) for followers, then removes the cell
//! from the open registry, computes the whole batch, and publishes the
//! results. Followers just enqueue their node and wait on the cell's
//! condvar. A window of zero degenerates to per-request dispatch —
//! that is the bench's comparison baseline, not a separate code path.
//!
//! Lock order is always registry → cell, and the compute runs with
//! *neither* lock held, so a slow matvec never blocks unrelated keys.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use socmix_obs::{Counter, Histogram};

static BATCHES: Counter = Counter::new("serve.batches");
static BATCHED_QUERIES: Counter = Counter::new("serve.batched_queries");
static BATCH_WIDTH: Histogram = Histogram::new("serve.batch_width");

/// What a batch computes over: one u64 item per query (for escape
/// probes, the start node).
pub type Item = u64;

/// The batch identity: queries coalesce only within the same key
/// (for escape probes: graph content key ⊕ walk length).
pub type BatchKey = u64;

enum Phase {
    /// Leader is still inside the window; followers may join.
    Filling,
    /// Leader is computing; the cell is out of the registry.
    Running,
    /// Results are published, one per enqueued item.
    Done(Vec<f64>),
    /// The compute failed; every waiter gets the same message.
    Failed(String),
}

struct Cell {
    state: Mutex<CellState>,
    cond: Condvar,
}

struct CellState {
    items: Vec<Item>,
    phase: Phase,
}

/// The open-batch registry plus batching knobs.
pub struct Batcher {
    open: Mutex<HashMap<BatchKey, Arc<Cell>>>,
    window: Duration,
    max: usize,
}

/// Outcome of one batched query.
pub enum BatchResult {
    /// The computed value for this query's item.
    Value(f64),
    /// The deadline passed while waiting on the batch.
    Deadline,
    /// The batch compute failed with this message.
    Error(String),
}

impl Batcher {
    /// A batcher with the given coalescing window and max batch size.
    /// `window == 0` means every query leads its own batch of one.
    pub fn new(window: Duration, max: usize) -> Self {
        Batcher {
            open: Mutex::new(HashMap::new()),
            window,
            max: max.max(1),
        }
    }

    /// Runs `item` under `key`, coalescing with concurrent callers.
    /// `compute` maps the batch's items to one value each, in order;
    /// it runs on exactly one caller (the leader) per batch, with no
    /// batcher lock held. `deadline` bounds a follower's wait.
    pub fn run(
        &self,
        key: BatchKey,
        item: Item,
        deadline: Instant,
        compute: impl FnOnce(&[Item]) -> Result<Vec<f64>, String>,
    ) -> BatchResult {
        let (cell, index, leader) = self.join(key, item);
        if leader {
            self.lead(key, &cell, compute);
        }
        self.await_result(&cell, index, deadline)
    }

    /// Joins (or opens) the cell for `key`; returns the cell, the
    /// caller's item index, and whether the caller leads.
    fn join(&self, key: BatchKey, item: Item) -> (Arc<Cell>, usize, bool) {
        let mut open = self.open.lock().unwrap_or_else(|e| e.into_inner());
        if self.window > Duration::ZERO {
            if let Some(cell) = open.get(&key) {
                let cell = Arc::clone(cell);
                let mut st = cell.state.lock().unwrap_or_else(|e| e.into_inner());
                if matches!(st.phase, Phase::Filling) && st.items.len() < self.max {
                    st.items.push(item);
                    let index = st.items.len() - 1;
                    let full = st.items.len() >= self.max;
                    drop(st);
                    if full {
                        // Wake the leader early: the window is moot.
                        cell.cond.notify_all();
                    }
                    return (cell, index, false);
                }
                // Cell is full or already running: fall through and
                // open a fresh one in its place.
            }
        }
        let cell = Arc::new(Cell {
            state: Mutex::new(CellState {
                items: vec![item],
                phase: Phase::Filling,
            }),
            cond: Condvar::new(),
        });
        if self.window > Duration::ZERO {
            open.insert(key, Arc::clone(&cell));
        }
        (cell, 0, true)
    }

    /// Leader path: wait out the window, seal the batch, compute,
    /// publish.
    fn lead(
        &self,
        key: BatchKey,
        cell: &Arc<Cell>,
        compute: impl FnOnce(&[Item]) -> Result<Vec<f64>, String>,
    ) {
        if self.window > Duration::ZERO {
            let opened = Instant::now();
            let mut st = cell.state.lock().unwrap_or_else(|e| e.into_inner());
            while st.items.len() < self.max {
                let elapsed = opened.elapsed();
                if elapsed >= self.window {
                    break;
                }
                let (next, timeout) = cell
                    .cond
                    .wait_timeout(st, self.window - elapsed)
                    .unwrap_or_else(|e| e.into_inner());
                st = next;
                if timeout.timed_out() {
                    break;
                }
            }
            st.phase = Phase::Running;
            drop(st);
            // Seal: late arrivals for this key now open a new cell.
            let mut open = self.open.lock().unwrap_or_else(|e| e.into_inner());
            if open
                .get(&key)
                .is_some_and(|current| Arc::ptr_eq(current, cell))
            {
                open.remove(&key);
            }
        } else {
            let mut st = cell.state.lock().unwrap_or_else(|e| e.into_inner());
            st.phase = Phase::Running;
        }

        // Snapshot the sealed batch; compute with no lock held.
        let items = {
            let st = cell.state.lock().unwrap_or_else(|e| e.into_inner());
            st.items.clone()
        };
        BATCHES.incr();
        BATCHED_QUERIES.add(items.len() as u64);
        BATCH_WIDTH.record(items.len() as u64);
        let outcome = compute(&items);

        let mut st = cell.state.lock().unwrap_or_else(|e| e.into_inner());
        st.phase = match outcome {
            Ok(values) if values.len() == items.len() => Phase::Done(values),
            Ok(values) => Phase::Failed(format!(
                "batch compute returned {} values for {} queries",
                values.len(),
                items.len()
            )),
            Err(e) => Phase::Failed(e),
        };
        drop(st);
        cell.cond.notify_all();
    }

    /// Waits for the cell to publish, honoring the caller's deadline.
    fn await_result(&self, cell: &Arc<Cell>, index: usize, deadline: Instant) -> BatchResult {
        let mut st = cell.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &st.phase {
                Phase::Done(values) => {
                    return match values.get(index) {
                        Some(v) => BatchResult::Value(*v),
                        None => BatchResult::Error("batch result index out of range".into()),
                    };
                }
                Phase::Failed(e) => return BatchResult::Error(e.clone()),
                Phase::Filling | Phase::Running => {
                    let now = Instant::now();
                    if now >= deadline {
                        return BatchResult::Deadline;
                    }
                    let (next, _) = cell
                        .cond
                        .wait_timeout(st, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    st = next;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(10)
    }

    #[test]
    fn window_zero_is_per_request() {
        let b = Batcher::new(Duration::ZERO, 64);
        let calls = AtomicUsize::new(0);
        for i in 0..4u64 {
            let r = b.run(7, i, far_deadline(), |items| {
                calls.fetch_add(1, Ordering::Relaxed);
                assert_eq!(items, &[i], "each query leads alone");
                Ok(vec![i as f64 * 2.0])
            });
            match r {
                BatchResult::Value(v) => assert_eq!(v, i as f64 * 2.0),
                _ => panic!("per-request path must succeed"),
            }
        }
        assert_eq!(calls.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn concurrent_queries_coalesce_into_one_compute() {
        let b = Arc::new(Batcher::new(Duration::from_millis(100), 8));
        let computes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let b = Arc::clone(&b);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                let r = b.run(42, i, far_deadline(), |items| {
                    computes.fetch_add(1, Ordering::Relaxed);
                    Ok(items.iter().map(|&x| x as f64 + 0.5).collect())
                });
                match r {
                    BatchResult::Value(v) => assert_eq!(v, i as f64 + 0.5),
                    BatchResult::Deadline => panic!("deadline inside a generous window"),
                    BatchResult::Error(e) => panic!("batch failed: {e}"),
                }
            }));
        }
        for h in handles {
            h.join().expect("batch worker");
        }
        // The max=8 batch fills and computes once; thread scheduling
        // may split it (a straggler missing the window), but it must
        // never take 8 separate computes.
        let n = computes.load(Ordering::Relaxed);
        assert!(
            n < 8,
            "8 concurrent queries took {n} computes — no coalescing"
        );
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let b = Arc::new(Batcher::new(Duration::from_millis(50), 8));
        let t = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                b.run(1, 10, far_deadline(), |items| {
                    Ok(items.iter().map(|&x| x as f64).collect())
                })
            })
        };
        let r = b.run(2, 20, far_deadline(), |items| {
            assert_eq!(items, &[20], "key 2 never sees key 1's item");
            Ok(vec![99.0])
        });
        assert!(matches!(r, BatchResult::Value(v) if v == 99.0));
        match t.join().expect("leader thread") {
            BatchResult::Value(v) => assert_eq!(v, 10.0),
            _ => panic!("key 1 leader must succeed"),
        }
    }

    #[test]
    fn failures_reach_every_waiter() {
        let b = Batcher::new(Duration::ZERO, 4);
        let r = b.run(9, 0, far_deadline(), |_| Err("graph melted".into()));
        match r {
            BatchResult::Error(e) => assert!(e.contains("melted")),
            _ => panic!("compute failure must surface as an error"),
        }
    }

    #[test]
    fn expired_deadline_sheds_instead_of_hanging() {
        let b = Batcher::new(Duration::ZERO, 4);
        // Deadline already in the past: even the leader path reports
        // the shed after computing (the value is dropped, not served
        // beyond the deadline is fine — the waiter checks first).
        let past = Instant::now() - Duration::from_millis(1);
        let r = b.run(9, 0, past, |items| Ok(items.iter().map(|_| 1.0).collect()));
        // Leader computes then observes Done before checking the
        // clock, so a Value is also acceptable; what is *not*
        // acceptable is a hang. Either way this returns.
        assert!(matches!(r, BatchResult::Value(_) | BatchResult::Deadline));
    }
}
