//! Bounded answer cache, keyed by content hash.
//!
//! A `/mix` answer depends only on (graph content key, ε, query
//! class), so the server caches the *rendered response body* — the
//! cached, per-request, and batched paths all serve byte-identical
//! strings, which is what the serve-smoke equivalence check compares.
//!
//! Eviction is FIFO over insertion order with a fixed entry cap; the
//! values are small rendered JSON strings, so a size-based budget
//! would be over-engineering here.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use socmix_obs::Counter;

static HITS: Counter = Counter::new("serve.cache.hit");
static MISSES: Counter = Counter::new("serve.cache.miss");

/// Default entry cap for the server's answer cache.
pub const DEFAULT_CAP: usize = 1024;

/// FNV-1a over a list of u64 components — the cache key combinator.
/// (ε enters via `to_bits`, so `0.25` and `0.250000001` are distinct
/// keys; no float equality anywhere.)
pub fn answer_key(parts: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for b in part.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

struct CacheInner {
    map: HashMap<u64, Arc<String>>,
    order: VecDeque<u64>,
}

/// Bounded rendered-answer cache.
pub struct AnswerCache {
    inner: Mutex<CacheInner>,
    cap: usize,
}

impl AnswerCache {
    /// A cache holding at most `cap` rendered answers.
    pub fn new(cap: usize) -> Self {
        AnswerCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            cap: cap.max(1),
        }
    }

    /// Cached body for `key`, counting the hit/miss.
    pub fn get(&self, key: u64) -> Option<Arc<String>> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.map.get(&key) {
            Some(v) => {
                HITS.incr();
                Some(Arc::clone(v))
            }
            None => {
                MISSES.incr();
                None
            }
        }
    }

    /// Inserts a rendered body, evicting the oldest entry past the
    /// cap. Re-inserting an existing key refreshes the value without
    /// growing the order queue.
    pub fn put(&self, key: u64, body: Arc<String>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.map.insert(key, body).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > self.cap {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_separate_eps_and_graph() {
        let a = answer_key(&[1, 0.25f64.to_bits()]);
        let b = answer_key(&[1, 0.26f64.to_bits()]);
        let c = answer_key(&[2, 0.25f64.to_bits()]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, answer_key(&[1, 0.25f64.to_bits()]), "deterministic");
    }

    #[test]
    fn fifo_eviction_respects_the_cap() {
        let cache = AnswerCache::new(2);
        cache.put(1, Arc::new("one".into()));
        cache.put(2, Arc::new("two".into()));
        cache.put(3, Arc::new("three".into()));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_none(), "oldest entry evicted");
        assert_eq!(cache.get(2).as_deref().map(String::as_str), Some("two"));
        assert_eq!(cache.get(3).as_deref().map(String::as_str), Some("three"));
    }

    #[test]
    fn reinsert_refreshes_without_duplicating_order() {
        let cache = AnswerCache::new(2);
        cache.put(1, Arc::new("a".into()));
        cache.put(1, Arc::new("b".into()));
        cache.put(2, Arc::new("c".into()));
        assert_eq!(cache.len(), 2, "no phantom entry from the refresh");
        assert_eq!(cache.get(1).as_deref().map(String::as_str), Some("b"));
    }
}
