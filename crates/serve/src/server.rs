//! The server proper: listeners, the bounded accept queue, worker
//! threads, and the endpoint dispatch shared by the HTTP and frame
//! listeners.
//!
//! Concurrency model: one accept thread per listener pushes accepted
//! connections into a bounded queue; `threads` workers pop and serve
//! one connection at a time (keep-alive included). Overload is
//! explicit, never implicit: a connection arriving on a full queue is
//! answered with a typed 503 *at accept* and dropped (`serve.shed`),
//! and a request that ages past the per-request deadline — in the
//! queue or inside a batch wait — is shed the same way. Memory stays
//! bounded because the queue, the request body, the answer cache, and
//! every batch are capped.
//!
//! This module is on the request path (SL005 hot-path scope): no
//! `unwrap`/`expect`; mutexes recover from poisoning via
//! `unwrap_or_else(|e| e.into_inner())`.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use socmix_obs::{Counter, Histogram, Span, Value};
use socmix_par::Pool;

use crate::batch::{BatchResult, Batcher};
use crate::cache::{answer_key, AnswerCache, DEFAULT_CAP};
use crate::catalog::{Catalog, LoadedGraph};
use crate::http::{self, ParseError, Request};
use crate::knobs::ServeConfig;
use crate::queries;

static REQUESTS: Counter = Counter::new("serve.requests");
static SHED: Counter = Counter::new("serve.shed");
static HTTP_CONNS: Counter = Counter::new("serve.http_conns");
static FRAME_CONNS: Counter = Counter::new("serve.frame_conns");
static REQUEST_NS: Histogram = Histogram::new("serve.request_ns");

/// Query class discriminants folded into answer-cache/batch keys so a
/// `/mix` key can never collide with an `/escape` key for the same
/// graph.
const CLASS_MIX: u64 = 1;
const CLASS_ESCAPE: u64 = 2;

/// The typed overload body every shed path serves.
pub const SHED_BODY: &str = "{\"error\":\"overloaded\",\"shed\":true}";

/// How long an idle keep-alive connection (HTTP or frame) may sit
/// between requests before the worker reclaims itself. Also the upper
/// bound [`Server::shutdown`] waits for an in-flight idle connection.
pub(crate) const IDLE_TIMEOUT: Duration = Duration::from_secs(5);

/// One rendered endpoint answer.
pub struct ApiResponse {
    /// HTTP status code (the frame listener maps it to a reply op).
    pub status: u16,
    /// JSON body.
    pub body: String,
}

impl ApiResponse {
    fn ok(body: String) -> Self {
        ApiResponse { status: 200, body }
    }

    fn error(status: u16, message: &str) -> Self {
        ApiResponse {
            status,
            body: Value::Obj(vec![("error".to_string(), Value::Str(message.to_string()))])
                .to_compact(),
        }
    }

    fn shed() -> Self {
        SHED.incr();
        ApiResponse {
            status: 503,
            body: SHED_BODY.to_string(),
        }
    }
}

/// Counts a frame-listener connection (called by `frames.rs`, which
/// owns the rest of that listener's telemetry).
pub(crate) fn frame_conn_opened() {
    FRAME_CONNS.incr();
}

/// Standard reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Everything the endpoint handlers share.
pub(crate) struct Shared {
    pub cfg: ServeConfig,
    pub catalog: Catalog,
    pub answers: AnswerCache,
    pub batcher: Batcher,
    pub pool: Pool,
}

/// Merged view over query params and an optional JSON body, so the
/// HTTP listener (query string), curl POSTs (JSON body), and the
/// frame listener (JSON payload) all feed one extraction path.
struct Params<'a> {
    query: &'a [(String, String)],
    body: Option<Value>,
}

impl Params<'_> {
    fn new<'a>(query: &'a [(String, String)], body: &[u8]) -> Params<'a> {
        let body = if body.is_empty() {
            None
        } else {
            socmix_obs::parse(&String::from_utf8_lossy(body)).ok()
        };
        Params { query, body }
    }

    fn get_str(&self, key: &str) -> Option<String> {
        if let Some((_, v)) = self.query.iter().find(|(k, _)| k == key) {
            return Some(v.clone());
        }
        self.body
            .as_ref()
            .and_then(|b| b.get(key))
            .and_then(Value::as_str)
            .map(str::to_string)
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        if let Some((_, v)) = self.query.iter().find(|(k, _)| k == key) {
            return v
                .parse::<f64>()
                .map_err(|_| format!("{key} must be a number, got {v:?}"));
        }
        match self.body.as_ref().and_then(|b| b.get(key)) {
            Some(v) => v.as_f64().ok_or_else(|| format!("{key} must be a number")),
            None => Ok(default),
        }
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        if let Some((_, v)) = self.query.iter().find(|(k, _)| k == key) {
            return v
                .parse::<u64>()
                .map_err(|_| format!("{key} must be a non-negative integer, got {v:?}"));
        }
        match self.body.as_ref().and_then(|b| b.get(key)) {
            Some(v) => match v.as_i64() {
                Some(n) if n >= 0 => Ok(n as u64),
                _ => Err(format!("{key} must be a non-negative integer")),
            },
            None => Ok(default),
        }
    }

    /// A list of node ids: JSON array in the body, or a
    /// comma-separated query value.
    fn get_u64_list(&self, key: &str) -> Result<Vec<u64>, String> {
        if let Some((_, v)) = self.query.iter().find(|(k, _)| k == key) {
            return v
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.trim()
                        .parse::<u64>()
                        .map_err(|_| format!("{key} entry {s:?} is not a node id"))
                })
                .collect();
        }
        match self.body.as_ref().and_then(|b| b.get(key)) {
            Some(Value::Arr(items)) => items
                .iter()
                .map(|v| match v.as_i64() {
                    Some(n) if n >= 0 => Ok(n as u64),
                    _ => Err(format!("{key} entries must be non-negative integers")),
                })
                .collect(),
            Some(_) => Err(format!("{key} must be an array of node ids")),
            None => Ok(Vec::new()),
        }
    }
}

/// Looks up the resident graph or renders the 404 telling the caller
/// how to load it.
fn resident(shared: &Shared, p: &Params<'_>) -> Result<Arc<LoadedGraph>, ApiResponse> {
    let Some(slug) = p.get_str("graph") else {
        return Err(ApiResponse::error(400, "missing required parameter: graph"));
    };
    shared.catalog.get(&slug).ok_or_else(|| {
        ApiResponse::error(
            404,
            &format!("graph {slug:?} is not loaded; POST /load?graph={slug} first"),
        )
    })
}

/// Routes one request. Both listeners call this; the HTTP layer wraps
/// the result in a status line, the frame layer in a reply opcode.
pub(crate) fn dispatch(
    shared: &Shared,
    method: &str,
    path: &str,
    query: &[(String, String)],
    body: &[u8],
    deadline: Instant,
) -> ApiResponse {
    REQUESTS.incr();
    let _span = Span::start(&REQUEST_NS);
    let p = Params::new(query, body);
    match (method, path) {
        ("GET", "/health") => ApiResponse::ok("{\"ok\":true}".to_string()),
        ("GET", "/metrics") => ApiResponse::ok(socmix_obs::snapshot().to_json().to_compact()),
        ("GET", "/trace") => {
            let events = socmix_obs::trace::drain();
            let labels = socmix_obs::trace::thread_labels();
            let rows =
                socmix_obs::export::chrome_events(&events, std::process::id() as u64, &labels);
            ApiResponse::ok(socmix_obs::export::chrome_trace_document(rows).to_compact())
        }
        ("GET", "/graphs") => {
            let rows: Vec<Value> = shared
                .catalog
                .list()
                .iter()
                .map(|lg| {
                    Value::Obj(vec![
                        ("graph".to_string(), Value::Str(lg.slug.clone())),
                        ("n".to_string(), Value::Int(lg.graph.num_nodes() as i64)),
                        ("edges".to_string(), Value::Int(lg.graph.num_edges() as i64)),
                        ("scale".to_string(), Value::Float(lg.scale)),
                        ("seed".to_string(), Value::Int(lg.seed as i64)),
                        ("key".to_string(), Value::Str(format!("{:016x}", lg.key))),
                    ])
                })
                .collect();
            ApiResponse::ok(Value::Arr(rows).to_compact())
        }
        ("GET", "/mix") => {
            let lg = match resident(shared, &p) {
                Ok(lg) => lg,
                Err(resp) => return resp,
            };
            let eps = match p.get_f64("eps", 0.25) {
                Ok(v) => v,
                Err(e) => return ApiResponse::error(400, &e),
            };
            let key = answer_key(&[lg.key, eps.to_bits(), CLASS_MIX]);
            if let Some(body) = shared.answers.get(key) {
                return ApiResponse::ok(body.as_ref().clone());
            }
            match queries::mix(&lg, eps, shared.pool) {
                Ok(body) => {
                    shared.answers.put(key, Arc::new(body.clone()));
                    ApiResponse::ok(body)
                }
                Err(e) => ApiResponse::error(400, &e),
            }
        }
        ("GET", "/escape") => {
            let lg = match resident(shared, &p) {
                Ok(lg) => lg,
                Err(resp) => return resp,
            };
            let node = match p.get_u64("node", 0) {
                Ok(v) => v,
                Err(e) => return ApiResponse::error(400, &e),
            };
            let w = match p.get_u64("w", 10) {
                Ok(v) => v as usize,
                Err(e) => return ApiResponse::error(400, &e),
            };
            let batch_key = answer_key(&[lg.key, w as u64, CLASS_ESCAPE]);
            let pool = shared.pool;
            let result = shared.batcher.run(batch_key, node, deadline, |nodes| {
                queries::escape_batch(&lg, nodes, w, pool)
            });
            match result {
                BatchResult::Value(prob) => {
                    ApiResponse::ok(queries::render_escape(&lg, node, w, prob))
                }
                BatchResult::Deadline => ApiResponse::shed(),
                BatchResult::Error(e) => ApiResponse::error(400, &e),
            }
        }
        ("POST", "/admit") => {
            let lg = match resident(shared, &p) {
                Ok(lg) => lg,
                Err(resp) => return resp,
            };
            let verifier = match p.get_u64("verifier", 0) {
                Ok(v) => v,
                Err(e) => return ApiResponse::error(400, &e),
            };
            let suspects = match p.get_u64_list("suspects") {
                Ok(v) => v,
                Err(e) => return ApiResponse::error(400, &e),
            };
            let w = match p.get_u64("w", 10) {
                Ok(v) => v as usize,
                Err(e) => return ApiResponse::error(400, &e),
            };
            match queries::admit(&lg, verifier, &suspects, w, shared.pool) {
                Ok(body) => ApiResponse::ok(body),
                Err(e) => ApiResponse::error(400, &e),
            }
        }
        ("POST", "/load") => {
            let Some(slug) = p.get_str("graph") else {
                return ApiResponse::error(400, "missing required parameter: graph");
            };
            let scale = match p.get_f64("scale", 0.1) {
                Ok(v) => v,
                Err(e) => return ApiResponse::error(400, &e),
            };
            let seed = match p.get_u64("seed", 0) {
                Ok(v) => v,
                Err(e) => return ApiResponse::error(400, &e),
            };
            match shared.catalog.load(&slug, scale, seed) {
                Ok(lg) => ApiResponse::ok(
                    Value::Obj(vec![
                        ("graph".to_string(), Value::Str(lg.slug.clone())),
                        ("n".to_string(), Value::Int(lg.graph.num_nodes() as i64)),
                        ("edges".to_string(), Value::Int(lg.graph.num_edges() as i64)),
                        ("key".to_string(), Value::Str(format!("{:016x}", lg.key))),
                    ])
                    .to_compact(),
                ),
                Err(e) => ApiResponse::error(400, &e),
            }
        }
        ("POST", "/evict") => {
            let Some(slug) = p.get_str("graph") else {
                return ApiResponse::error(400, "missing required parameter: graph");
            };
            let evicted = shared.catalog.evict(&slug);
            ApiResponse::ok(
                Value::Obj(vec![("evicted".to_string(), Value::Bool(evicted))]).to_compact(),
            )
        }
        ("GET", _) | ("POST", _) => {
            ApiResponse::error(404, &format!("no such endpoint: {method} {path}"))
        }
        _ => ApiResponse::error(405, &format!("method {method} not supported")),
    }
}

/// Which listener a queued connection came from.
#[derive(Clone, Copy, PartialEq)]
enum ConnKind {
    Http,
    Frame,
}

struct Conn {
    stream: TcpStream,
    kind: ConnKind,
    arrived: Instant,
}

/// The bounded accept queue. `push` never blocks: a full queue is the
/// caller's signal to shed.
struct ConnQueue {
    inner: Mutex<VecDeque<Conn>>,
    cond: Condvar,
    cap: usize,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            cap,
        }
    }

    /// Enqueues the connection, or hands it back when the queue is
    /// full so the acceptor can shed it with a typed reply.
    fn push(&self, conn: Conn) -> Result<(), Conn> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.cap {
            return Err(conn);
        }
        q.push_back(conn);
        drop(q);
        self.cond.notify_one();
        Ok(())
    }

    /// Pops the next connection, waking periodically to check `stop`.
    fn pop(&self, stop: &AtomicBool) -> Option<Conn> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(conn) = q.pop_front() {
                return Some(conn);
            }
            // ORDERING: Acquire pairs with the Release store in
            // `shutdown` so a worker that observes the stop also sees
            // the state the shutting-down thread settled beforehand.
            if stop.load(Ordering::Acquire) {
                return None;
            }
            let (next, _) = self
                .cond
                .wait_timeout(q, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner());
            q = next;
        }
    }
}

/// A running server. Dropping the handle without calling
/// [`shutdown`](Server::shutdown) leaks the listener threads for the
/// remainder of the process — tests and the binary both shut down
/// explicitly.
pub struct Server {
    addr: SocketAddr,
    frame_addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds both listeners, spawns the accept and worker threads, and
    /// returns. `cache_dir` backs the graph catalog.
    ///
    /// Turns the process-wide metrics gate on: a server without its
    /// `/metrics` surface is blind, and the gate is the workspace's
    /// one-atomic-load kind, so resident graphs pay nothing extra.
    pub fn start(
        cfg: ServeConfig,
        cache_dir: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<Server> {
        socmix_obs::set_metrics_enabled(true);
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let frame_listener = match &cfg.frame_addr {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        let frame_addr = match &frame_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let shared = Arc::new(Shared {
            catalog: Catalog::at(cache_dir),
            answers: AnswerCache::new(DEFAULT_CAP),
            batcher: Batcher::new(cfg.batch_window, cfg.batch_max),
            pool: Pool::new(),
            cfg,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue::new(shared.cfg.queue));

        let mut threads = Vec::new();
        threads.push(spawn_acceptor(
            listener,
            ConnKind::Http,
            Arc::clone(&queue),
            Arc::clone(&stop),
        )?);
        if let Some(l) = frame_listener {
            threads.push(spawn_acceptor(
                l,
                ConnKind::Frame,
                Arc::clone(&queue),
                Arc::clone(&stop),
            )?);
        }
        for i in 0..shared.cfg.threads {
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &queue, &stop))
                    .map_err(std::io::Error::other)?,
            );
        }

        Ok(Server {
            addr,
            frame_addr,
            stop,
            threads,
        })
    }

    /// The HTTP listener's bound address (resolves `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The frame listener's bound address, when enabled.
    pub fn frame_addr(&self) -> Option<SocketAddr> {
        self.frame_addr
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn shutdown(mut self) {
        // ORDERING: Release pairs with the Acquire loads on the accept
        // and worker threads — everything this thread did before the
        // stop is visible to a thread that exits because of it.
        self.stop.store(true, Ordering::Release);
        // Unblock the accept calls with a throwaway connection each.
        let _ = TcpStream::connect(self.addr);
        if let Some(fa) = self.frame_addr {
            let _ = TcpStream::connect(fa);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn spawn_acceptor(
    listener: TcpListener,
    kind: ConnKind,
    queue: Arc<ConnQueue>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<JoinHandle<()>> {
    let name = match kind {
        ConnKind::Http => "serve-accept-http",
        ConnKind::Frame => "serve-accept-frame",
    };
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || loop {
            let (stream, _) = match listener.accept() {
                Ok(pair) => pair,
                Err(_) => {
                    // ORDERING: Acquire pairs with the Release store in
                    // `shutdown` (see `ConnQueue::pop`).
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    continue;
                }
            };
            // ORDERING: Acquire — same pairing; the wake-up connection
            // from `shutdown` lands here, after the store.
            if stop.load(Ordering::Acquire) {
                return;
            }
            let conn = Conn {
                stream,
                kind,
                arrived: Instant::now(),
            };
            if let Err(mut rejected) = queue.push(conn) {
                // Queue full: shed at the door, cheaply, on the accept
                // thread — a typed reply, not a silent drop or an
                // unbounded backlog.
                SHED.incr();
                match kind {
                    ConnKind::Http => {
                        let _ = http::write_response(
                            &mut rejected.stream,
                            503,
                            reason(503),
                            "application/json",
                            SHED_BODY,
                            false,
                        );
                    }
                    ConnKind::Frame => {
                        crate::frames::write_shed(&mut rejected.stream);
                    }
                }
            }
        })
        .map_err(std::io::Error::other)
}

fn worker_loop(shared: &Shared, queue: &ConnQueue, stop: &AtomicBool) {
    while let Some(conn) = queue.pop(stop) {
        match conn.kind {
            ConnKind::Http => serve_http_conn(shared, conn.stream, conn.arrived),
            ConnKind::Frame => crate::frames::serve_frame_conn(shared, conn.stream, conn.arrived),
        }
    }
}

/// Serves one HTTP connection (keep-alive loop) to completion.
fn serve_http_conn(shared: &Shared, stream: TcpStream, arrived: Instant) {
    HTTP_CONNS.incr();
    let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(s) => BufWriter::new(s),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    // Shed without reading if the connection already aged past the
    // deadline while queued.
    if arrived.elapsed() > shared.cfg.deadline {
        let resp = ApiResponse::shed();
        let _ = http::write_response(
            &mut writer,
            resp.status,
            reason(resp.status),
            "application/json",
            &resp.body,
            false,
        );
        return;
    }

    let mut first = true;
    loop {
        let req = match http::read_request(&mut reader) {
            Ok(req) => req,
            Err(ParseError::ConnectionClosed) => return,
            Err(ParseError::Bad(msg)) => {
                let resp = ApiResponse::error(400, &msg);
                let _ = http::write_response(
                    &mut writer,
                    resp.status,
                    reason(resp.status),
                    "application/json",
                    &resp.body,
                    false,
                );
                return;
            }
            Err(ParseError::Io(_)) => return,
        };
        // The first request inherits the queue wait against its
        // deadline; later keep-alive requests start their clock at
        // read completion.
        let deadline = if first {
            arrived + shared.cfg.deadline
        } else {
            Instant::now() + shared.cfg.deadline
        };
        first = false;
        let resp = respond(shared, &req, deadline);
        let keep = req.keep_alive && resp.status != 503;
        if http::write_response(
            &mut writer,
            resp.status,
            reason(resp.status),
            "application/json",
            &resp.body,
            keep,
        )
        .is_err()
            || !keep
        {
            return;
        }
    }
}

fn respond(shared: &Shared, req: &Request, deadline: Instant) -> ApiResponse {
    if Instant::now() > deadline {
        return ApiResponse::shed();
    }
    dispatch(
        shared,
        &req.method,
        &req.path,
        &req.query,
        &req.body,
        deadline,
    )
}
