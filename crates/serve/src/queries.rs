//! The three query kernels behind the server's endpoints.
//!
//! Everything here returns `Result<_, String>` — the string becomes a
//! typed JSON error body, never a panic. This module is inside the
//! SL005 hot-path lint scope: graph and parameter validation happens
//! *before* calling into estimator APIs whose contracts are assert-
//! based (`SybilLimit::new` panics on an empty graph, walk evolution
//! indexes by node id, and so on).

use socmix_core::{MixingBounds, Slem};
use socmix_linalg::{MultiLinearOp, MultiVec, WalkOp};
use socmix_obs::{Counter, Histogram, Span, Value};
use socmix_par::Pool;
use socmix_sybil::sybillimit::Verification;
use socmix_sybil::{SybilLimit, SybilLimitParams};

use crate::catalog::LoadedGraph;

static MIX_NS: Histogram = Histogram::new("serve.query.mix_ns");
static ESCAPE_NS: Histogram = Histogram::new("serve.query.escape_ns");
static ADMIT_NS: Histogram = Histogram::new("serve.query.admit_ns");
static SLEM_SOLVES: Counter = Counter::new("serve.slem_solves");

/// Fixed seed for served SLEM solves: two queries for the same graph
/// must agree bit-for-bit, so the estimator's randomized start vector
/// is pinned.
const SLEM_SEED: u64 = 0x0050_c1a1;

/// `GET /mix?graph=..&eps=..` — the SLEM µ and the paper's mixing-time
/// bracket `T(ε) ∈ [lower, upper]` at the requested ε.
///
/// Renders the full JSON body so the answer cache can serve the exact
/// same bytes.
pub fn mix(lg: &LoadedGraph, eps: f64, pool: Pool) -> Result<String, String> {
    if !(eps.is_finite() && eps > 0.0 && eps < 1.0) {
        return Err(format!("eps must be in (0, 1), got {eps}"));
    }
    let _span = Span::start(&MIX_NS);
    SLEM_SOLVES.incr();
    let est = Slem::auto(&lg.graph)
        .seed(SLEM_SEED)
        .pool(pool)
        .estimate()
        .map_err(|e| format!("slem estimation failed: {e}"))?;
    let bounds = MixingBounds::new(est.mu, lg.graph.num_nodes());
    let (lower, upper) = bounds.at_epsilon(eps);
    let mut obj = vec![
        ("graph".to_string(), Value::Str(lg.slug.clone())),
        ("n".to_string(), Value::Int(lg.graph.num_nodes() as i64)),
        ("mu".to_string(), Value::Float(est.mu)),
        ("eps".to_string(), Value::Float(eps)),
        ("t_lower".to_string(), Value::Float(lower)),
        ("t_upper".to_string(), Value::Float(upper)),
        ("converged".to_string(), Value::Bool(est.converged)),
        ("iterations".to_string(), Value::Int(est.iterations as i64)),
    ];
    if let Some(l2) = est.lambda2 {
        obj.push(("lambda2".to_string(), Value::Float(l2)));
    }
    Ok(Value::Obj(obj).to_compact())
}

/// Exact escape-probe batch: for each start node, the probability that
/// a `w`-step walk from it ends inside the Sybil region (non-
/// absorbing; the "is inside at step w" event, one column of mass
/// evolution per query).
///
/// All columns evolve through the same
/// [`apply_multi`](MultiLinearOp::apply_multi) sweeps, whose exactness
/// contract guarantees each column matches the width-1 serial result
/// bit-for-bit — so batched and per-request dispatch serve identical
/// bytes.
pub fn escape_batch(
    lg: &LoadedGraph,
    nodes: &[u64],
    w: usize,
    pool: Pool,
) -> Result<Vec<f64>, String> {
    let attacked = &lg.attacked;
    let n = attacked.graph.num_nodes();
    if w == 0 || w > 10_000 {
        return Err(format!("w must be in 1..=10000, got {w}"));
    }
    for &node in nodes {
        if node as usize >= attacked.honest {
            return Err(format!(
                "node {node} is not an honest node (honest ids are 0..{})",
                attacked.honest
            ));
        }
    }
    let _span = Span::start(&ESCAPE_NS);
    let width = nodes.len();
    let mut x = MultiVec::zeros(n, width);
    let mut y = MultiVec::zeros(n, width);
    for (c, &node) in nodes.iter().enumerate() {
        x.set(node as usize, c, 1.0);
    }
    let op = WalkOp::with_pool(&attacked.graph, pool);
    for _ in 0..w {
        op.apply_multi(&x, &mut y, width);
        std::mem::swap(&mut x, &mut y);
    }
    // Mass inside the Sybil region at step w, per column. Row-major
    // summation in row order: identical association for width 1 and
    // width k, keeping the bit-equivalence contract end to end.
    let mut probs = vec![0.0f64; width];
    for row in attacked.honest..n {
        let vals = x.row(row);
        for (c, p) in probs.iter_mut().enumerate() {
            *p += vals[c];
        }
    }
    Ok(probs)
}

/// Renders one `/escape` response body from a batch-computed value.
pub fn render_escape(lg: &LoadedGraph, node: u64, w: usize, prob: f64) -> String {
    Value::Obj(vec![
        ("graph".to_string(), Value::Str(lg.slug.clone())),
        ("node".to_string(), Value::Int(node as i64)),
        ("w".to_string(), Value::Int(w as i64)),
        ("escape_probability".to_string(), Value::Float(prob)),
        (
            "sybil_count".to_string(),
            Value::Int((lg.attacked.graph.num_nodes() - lg.attacked.honest) as i64),
        ),
    ])
    .to_compact()
}

/// `POST /admit` — run SybilLimit with `verifier` judging `suspects`
/// on the loaded graph's attacked twin.
pub fn admit(
    lg: &LoadedGraph,
    verifier: u64,
    suspects: &[u64],
    w: usize,
    pool: Pool,
) -> Result<String, String> {
    let attacked = &lg.attacked;
    let n = attacked.graph.num_nodes();
    if attacked.graph.num_edges() == 0 {
        return Err("graph has no edges".to_string());
    }
    if w == 0 || w > 10_000 {
        return Err(format!("w must be in 1..=10000, got {w}"));
    }
    if verifier as usize >= attacked.honest {
        return Err(format!(
            "verifier {verifier} must be an honest node (0..{})",
            attacked.honest
        ));
    }
    if suspects.is_empty() || suspects.len() > 4096 {
        return Err(format!(
            "suspects must list 1..=4096 nodes, got {}",
            suspects.len()
        ));
    }
    for &s in suspects {
        if s as usize >= n {
            return Err(format!("suspect {s} out of range (graph has {n} nodes)"));
        }
    }
    let _span = Span::start(&ADMIT_NS);
    let params = SybilLimitParams {
        w,
        seed: lg.key,
        ..SybilLimitParams::default()
    };
    let nodes: Vec<u32> = suspects.iter().map(|&s| s as u32).collect();
    let verification = SybilLimit::new(&attacked.graph, params)
        .pool(pool)
        .verify_all(verifier as u32, &nodes);
    Ok(render_admit(lg, verifier, suspects, &verification))
}

fn render_admit(lg: &LoadedGraph, verifier: u64, suspects: &[u64], v: &Verification) -> String {
    let verdicts: Vec<Value> = suspects
        .iter()
        .zip(v.accepted.iter().zip(v.intersected.iter()))
        .map(|(&s, (&accepted, &intersected))| {
            Value::Obj(vec![
                ("node".to_string(), Value::Int(s as i64)),
                (
                    "sybil".to_string(),
                    Value::Bool(lg.attacked.is_sybil(s as u32)),
                ),
                ("accepted".to_string(), Value::Bool(accepted)),
                ("intersected".to_string(), Value::Bool(intersected)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("graph".to_string(), Value::Str(lg.slug.clone())),
        ("verifier".to_string(), Value::Int(verifier as i64)),
        ("r".to_string(), Value::Int(v.r as i64)),
        (
            "accepted_fraction".to_string(),
            Value::Float(v.accepted_fraction()),
        ),
        ("verdicts".to_string(), Value::Arr(verdicts)),
    ])
    .to_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use std::sync::Arc;

    fn tiny() -> Arc<LoadedGraph> {
        let dir = std::env::temp_dir().join(format!("socmix-serve-q-{}", std::process::id()));
        Catalog::at(dir)
            .load("wiki-vote", 0.02, 3)
            .expect("tiny graph")
    }

    #[test]
    fn mix_renders_parseable_json_and_caches_bitwise() {
        let lg = tiny();
        let a = mix(&lg, 0.25, Pool::serial()).expect("mix");
        let b = mix(&lg, 0.25, Pool::serial()).expect("mix again");
        assert_eq!(a, b, "pinned seed makes repeat solves byte-identical");
        let doc = socmix_obs::parse(&a).expect("valid JSON");
        let mu = doc.get("mu").and_then(Value::as_f64).expect("mu field");
        assert!(
            mu > 0.0 && mu < 1.0,
            "connected graph has mu in (0,1), got {mu}"
        );
        let lo = doc.get("t_lower").and_then(Value::as_f64).expect("t_lower");
        let hi = doc.get("t_upper").and_then(Value::as_f64).expect("t_upper");
        assert!(lo <= hi, "bracket is ordered");
    }

    #[test]
    fn mix_rejects_bad_eps() {
        let lg = tiny();
        for eps in [0.0, 1.0, -0.5, f64::NAN] {
            assert!(
                mix(&lg, eps, Pool::serial()).is_err(),
                "eps={eps} must fail"
            );
        }
    }

    #[test]
    fn batched_escape_is_bit_identical_to_per_request() {
        let lg = tiny();
        let nodes: Vec<u64> = vec![0, 1, 2, 5];
        let batched = escape_batch(&lg, &nodes, 8, Pool::serial()).expect("batched");
        for (i, &node) in nodes.iter().enumerate() {
            let solo = escape_batch(&lg, &[node], 8, Pool::serial()).expect("solo");
            assert_eq!(
                solo[0].to_bits(),
                batched[i].to_bits(),
                "node {node}: batched column must equal the width-1 result bit-for-bit"
            );
            assert!((0.0..=1.0).contains(&solo[0]), "a probability");
        }
    }

    #[test]
    fn escape_validates_nodes_and_w() {
        let lg = tiny();
        let sybil = lg.attacked.honest as u64;
        assert!(escape_batch(&lg, &[sybil], 4, Pool::serial()).is_err());
        assert!(escape_batch(&lg, &[0], 0, Pool::serial()).is_err());
        assert!(escape_batch(&lg, &[0], 1_000_000, Pool::serial()).is_err());
    }

    #[test]
    fn admit_labels_sybils_and_rejects_bad_input() {
        let lg = tiny();
        let sybil = lg.attacked.honest as u64;
        let body = admit(&lg, 0, &[1, sybil], 10, Pool::serial()).expect("admit run");
        let doc = socmix_obs::parse(&body).expect("valid JSON");
        let verdicts = doc
            .get("verdicts")
            .and_then(Value::as_arr)
            .expect("verdicts");
        assert_eq!(verdicts.len(), 2);
        assert_eq!(
            verdicts[0].get("sybil").and_then(Value::as_bool),
            Some(false)
        );
        assert_eq!(
            verdicts[1].get("sybil").and_then(Value::as_bool),
            Some(true)
        );

        assert!(
            admit(&lg, sybil, &[1], 10, Pool::serial()).is_err(),
            "sybil verifier"
        );
        assert!(
            admit(&lg, 0, &[], 10, Pool::serial()).is_err(),
            "no suspects"
        );
        assert!(
            admit(&lg, 0, &[u64::MAX], 10, Pool::serial()).is_err(),
            "range"
        );
        assert!(admit(&lg, 0, &[1], 0, Pool::serial()).is_err(), "w=0");
    }
}
