//! `socmix-serve` — mixing-time-as-a-service.
//!
//! ```text
//! socmix-serve [--addr A] [--frame-addr A] [--cache-dir D]
//!              [--preload GRAPH:SCALE:SEED]... [--threads N] [--queue N]
//!              [--deadline-ms N] [--batch-window-us N] [--batch-max N]
//! ```
//!
//! Every flag has a `SOCMIX_SERVE_*` environment twin (flags win);
//! see `socmix_serve::knobs`. `--preload` loads catalog graphs before
//! the listeners open so the first query never pays a generation.
//! Metrics are always on (the server *is* the ops surface:
//! `GET /metrics`); tracing follows `SOCMIX_TRACE` as everywhere else
//! in the workspace.

use socmix_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: socmix-serve [--addr A] [--frame-addr A] [--cache-dir D]\n\
         \x20                   [--preload GRAPH:SCALE:SEED]... [--threads N] [--queue N]\n\
         \x20                   [--deadline-ms N] [--batch-window-us N] [--batch-max N]"
    );
    std::process::exit(2);
}

fn main() {
    // Must run before anything else: a process relaunched as a shard
    // worker serves frames and exits instead of becoming a server.
    socmix_par::shard::worker_check();

    let mut cfg = ServeConfig::from_env();
    let mut cache_dir = std::path::PathBuf::from("results/cache");
    let mut preload: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {flag} needs a value");
                usage();
            }
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--frame-addr" => cfg.frame_addr = Some(value("--frame-addr")),
            "--cache-dir" => cache_dir = value("--cache-dir").into(),
            "--preload" => preload.push(value("--preload")),
            "--threads" => cfg.threads = parse_num(&value("--threads"), "--threads", 1),
            "--queue" => cfg.queue = parse_num(&value("--queue"), "--queue", 1),
            "--deadline-ms" => {
                cfg.deadline = std::time::Duration::from_millis(parse_num(
                    &value("--deadline-ms"),
                    "--deadline-ms",
                    1,
                ) as u64)
            }
            "--batch-window-us" => {
                cfg.batch_window = std::time::Duration::from_micros(parse_num(
                    &value("--batch-window-us"),
                    "--batch-window-us",
                    0,
                ) as u64)
            }
            "--batch-max" => cfg.batch_max = parse_num(&value("--batch-max"), "--batch-max", 1),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }

    socmix_obs::set_metrics_enabled(true);

    let server = match Server::start(cfg.clone(), &cache_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not start server on {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };

    // Preload through the server's own catalog-load path so the graph
    // lands exactly where queries will find it.
    for spec in &preload {
        let (slug, scale, seed) = match parse_preload(spec) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: bad --preload {spec:?}: {e}");
                std::process::exit(2);
            }
        };
        print!("preloading {slug} at scale {scale} seed {seed} ... ");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        let started = std::time::Instant::now();
        match preload_via_http(server.local_addr(), &slug, scale, seed) {
            Ok(()) => println!("done in {:.1}s", started.elapsed().as_secs_f64()),
            Err(e) => {
                eprintln!("\nerror: preload {slug} failed: {e}");
                std::process::exit(1);
            }
        }
    }

    println!("socmix-serve listening on http://{}", server.local_addr());
    if let Some(fa) = server.frame_addr() {
        println!("frame protocol listening on {fa}");
    }
    println!(
        "{} workers, queue {}, deadline {}ms, batch window {}us (max {})",
        cfg.threads,
        cfg.queue,
        cfg.deadline.as_millis(),
        cfg.batch_window.as_micros(),
        cfg.batch_max
    );

    // No signal handling without dependencies: the process serves
    // until killed, which is how the smoke job and systemd-style
    // supervisors both drive it.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn parse_num(v: &str, flag: &str, min: usize) -> usize {
    match v.parse::<usize>() {
        Ok(n) if n >= min => n,
        _ => {
            eprintln!("error: {flag} must be an integer >= {min}, got {v:?}");
            usage();
        }
    }
}

fn parse_preload(spec: &str) -> Result<(String, f64, u64), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        [slug] => Ok((slug.to_string(), 0.05, 0)),
        [slug, scale] => {
            let scale = scale.parse().map_err(|_| format!("bad scale {scale:?}"))?;
            Ok((slug.to_string(), scale, 0))
        }
        [slug, scale, seed] => {
            let scale = scale.parse().map_err(|_| format!("bad scale {scale:?}"))?;
            let seed = seed.parse().map_err(|_| format!("bad seed {seed:?}"))?;
            Ok((slug.to_string(), scale, seed))
        }
        _ => Err("expected GRAPH[:SCALE[:SEED]]".to_string()),
    }
}

/// Issues `POST /load` against the just-started server.
fn preload_via_http(
    addr: std::net::SocketAddr,
    slug: &str,
    scale: f64,
    seed: u64,
) -> Result<(), String> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let req = format!(
        "POST /load?graph={slug}&scale={scale}&seed={seed} HTTP/1.1\r\n\
         Host: localhost\r\nConnection: close\r\n\r\n"
    );
    stream
        .write_all(req.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut reply = String::new();
    stream
        .read_to_string(&mut reply)
        .map_err(|e| e.to_string())?;
    if reply.starts_with("HTTP/1.1 200") {
        Ok(())
    } else {
        Err(reply.lines().last().unwrap_or("no reply").to_string())
    }
}
