//! Minimal HTTP/1.1 subset for the serving layer.
//!
//! Just enough of the protocol for `curl`, a load generator, and the
//! serve-smoke CI job: `GET`/`POST`, a request line, headers we care
//! about (`Content-Length`, `Connection`), an optional body, and
//! query-string parsing with percent-decoding. Anything outside that
//! subset is a typed 400, never a panic — this module is on the
//! request path and inside the SL005 hot-path lint scope.
//!
//! Bounds: the head (request line + headers) is capped at 16 KiB and
//! the body at 1 MiB; either overflow is a parse error so a client
//! cannot make the server allocate unboundedly.

use std::io::{self, Read, Write};

/// Head (request line + headers) size cap.
const MAX_HEAD: usize = 16 << 10;
/// Body size cap (`Content-Length` beyond this is rejected).
pub const MAX_BODY: usize = 1 << 20;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET` or `POST` (anything else is rejected at parse time).
    pub method: String,
    /// Decoded path without the query string, e.g. `/mix`.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Raw body bytes (empty when there is no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should be kept open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed. `ConnectionClosed` is the clean
/// end of a keep-alive connection, not an error to report.
#[derive(Debug)]
pub enum ParseError {
    /// EOF before any byte of the next request — clean close.
    ConnectionClosed,
    /// I/O failure mid-request.
    Io(io::Error),
    /// Malformed or out-of-bounds request; the string is the reason
    /// sent back in the 400 body.
    Bad(String),
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads one request off `r`. Blocks until a full head arrives; the
/// caller bounds that with a socket read timeout.
pub fn read_request<R: Read>(r: &mut R) -> Result<Request, ParseError> {
    let head = read_head(r)?;
    let text = String::from_utf8_lossy(&head);
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method != "GET" && method != "POST" {
        return Err(ParseError::Bad(format!("unsupported method {method:?}")));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(format!("unsupported version {version:?}")));
    }

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; `Connection: close` opts out.
    let mut keep_alive = !version.ends_with("1.0");
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| ParseError::Bad(format!("bad content-length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY {
        return Err(ParseError::Bad(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY}-byte cap"
        )));
    }

    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path);
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.push((percent_decode(k), percent_decode(v)));
    }

    Ok(Request {
        method,
        path,
        query,
        body,
        keep_alive,
    })
}

/// Reads up to and including the `\r\n\r\n` head terminator, returning
/// the head bytes without the terminator. Bytes past the terminator
/// are never consumed (reads are one byte at a time through a caller-
/// provided `BufReader`, so this is not syscall-per-byte in practice).
fn read_head<R: Read>(r: &mut R) -> Result<Vec<u8>, ParseError> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                return if head.is_empty() {
                    Err(ParseError::ConnectionClosed)
                } else {
                    Err(ParseError::Io(io::ErrorKind::UnexpectedEof.into()))
                };
            }
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e)),
        }
        if head.ends_with(b"\r\n\r\n") {
            head.truncate(head.len() - 4);
            return Ok(head);
        }
        if head.len() > MAX_HEAD {
            return Err(ParseError::Bad(format!(
                "request head exceeds the {MAX_HEAD}-byte cap"
            )));
        }
    }
}

/// `%XX` and `+` decoding for paths and query components. Invalid
/// escapes pass through literally rather than failing the request.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(&String::from_utf8_lossy(h), 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One response, rendered and flushed in a single call.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    )?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut io::Cursor::new(raw.to_vec()))
    }

    #[test]
    fn get_with_query_parses() {
        let req = parse(b"GET /mix?graph=ca-grqc&eps=0.25 HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("well-formed GET");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/mix");
        assert_eq!(req.param("graph"), Some("ca-grqc"));
        assert_eq!(req.param("eps"), Some("0.25"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn post_reads_content_length_body() {
        let req = parse(
            b"POST /admit HTTP/1.1\r\nContent-Length: 9\r\nConnection: close\r\n\r\n{\"w\": 10}",
        )
        .expect("well-formed POST");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"w\": 10}");
        assert!(!req.keep_alive);
    }

    #[test]
    fn percent_and_plus_decode() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%", "trailing escape is literal");
        assert_eq!(percent_decode("%zz"), "%zz", "bad hex is literal");
    }

    #[test]
    fn oversized_bodies_and_methods_are_typed_errors() {
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(huge.as_bytes()), Err(ParseError::Bad(_))));
        assert!(matches!(
            parse(b"DELETE /x HTTP/1.1\r\n\r\n"),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(parse(b""), Err(ParseError::ConnectionClosed)));
    }

    #[test]
    fn response_has_framing_headers() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "application/json", "{}", true).expect("write to vec");
        let text = String::from_utf8(out).expect("ascii response");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
