//! Mixing-time-as-a-service: a long-running server over the socmix
//! estimators.
//!
//! The rest of the workspace measures mixing times in batch — one
//! `repro` invocation, one answer, one process exit. This crate keeps
//! the estimators resident and answers the same questions under
//! sustained traffic:
//!
//! - `GET /mix?graph=..&eps=..` — the SLEM µ and the paper's
//!   mixing-time bracket `T(ε)` ([`socmix_core::MixingBounds`]).
//! - `GET /escape?graph=..&node=..&w=..` — the probability a `w`-step
//!   walk from an honest node ends inside the graph's deterministic
//!   Sybil region.
//! - `POST /admit` — a SybilLimit admission verdict for a suspect
//!   list.
//! - `POST /load` / `POST /evict` / `GET /graphs` — catalog graphs in
//!   and out of residence (backed by [`socmix_gen::GraphCache`], so
//!   restarts reload from disk).
//! - `GET /metrics` / `GET /trace` / `GET /health` — the live ops
//!   surface: the [`socmix_obs`] snapshot and Chrome-trace export over
//!   HTTP.
//!
//! Two listeners speak the same endpoints: a minimal HTTP/1.1 subset
//! ([`http`]) and the workspace's length-prefixed frame protocol
//! ([`frames`]); answer bodies are byte-identical across them.
//!
//! # Throughput and overload
//!
//! Concurrent escape probes against the same (graph, `w`) coalesce
//! into one [`socmix_linalg::MultiLinearOp::apply_multi`] batch
//! ([`batch`]) — the batched kernel's exactness contract makes the
//! coalesced answers bit-identical to per-request dispatch, so
//! batching is purely a throughput lever (`SOCMIX_SERVE_BATCH_WINDOW_US=0`
//! turns it off). `/mix` answers cache by content-hash key
//! ([`cache`]). Overload is explicit: a bounded accept queue sheds at
//! the door with a typed 503 (`serve.shed`), and requests that age
//! past the per-request deadline shed instead of queueing unboundedly
//! ([`server`]).

pub mod batch;
pub mod cache;
pub mod catalog;
pub mod frames;
pub mod http;
pub mod knobs;
pub mod queries;
pub mod server;

pub use catalog::{Catalog, LoadedGraph};
pub use knobs::ServeConfig;
pub use server::{Server, SHED_BODY};
