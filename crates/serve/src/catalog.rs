//! The server's loaded-graph registry.
//!
//! Graphs come from the `socmix-gen` catalog via [`GraphCache`] (so a
//! restart at the same `--cache-dir` reloads from disk instead of
//! regenerating) and stay resident behind `Arc`s until evicted. Each
//! load also attaches a deterministic Sybil region — derived from the
//! graph's own content-hash key — so `/escape` and `/admit` answer
//! against the same adversary on every load of the same graph.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;
use socmix_gen::{Dataset, GraphCache};
use socmix_graph::Graph;
use socmix_obs::Counter;
use socmix_sybil::{attach_sybil_region, AttackParams, AttackedGraph, SybilTopology};

static LOADS: Counter = Counter::new("serve.catalog.loads");
static EVICTS: Counter = Counter::new("serve.catalog.evicts");

/// One resident graph plus its deterministic attacked twin.
///
/// `Debug` prints the identity, not the (potentially huge) graphs.
pub struct LoadedGraph {
    /// URL slug (`physics-1`), also the eviction handle.
    pub slug: String,
    /// Catalog display name (`Physics 1`).
    pub name: &'static str,
    /// Content-hash key from [`GraphCache::key`]; answer-cache keys
    /// and batch keys derive from this, so two loads of the same
    /// (dataset, scale, seed) share cached answers.
    pub key: u64,
    /// Scale the graph was generated at.
    pub scale: f64,
    /// Generation seed.
    pub seed: u64,
    /// The honest graph.
    pub graph: Arc<Graph>,
    /// The graph with a deterministic Sybil region attached
    /// (`sybil_count = max(1, n/20)`, `attack_edges = max(1, n/50)`,
    /// random topology seeded by `key`).
    pub attacked: Arc<AttackedGraph>,
}

impl std::fmt::Debug for LoadedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedGraph")
            .field("slug", &self.slug)
            .field("key", &format_args!("{:016x}", self.key))
            .field("n", &self.graph.num_nodes())
            .field("scale", &self.scale)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// Registry of resident graphs, keyed by slug.
pub struct Catalog {
    cache: GraphCache,
    loaded: Mutex<HashMap<String, Arc<LoadedGraph>>>,
}

/// URL slug for a catalog name: lowercased, spaces become dashes
/// (`"Physics 1"` → `"physics-1"`).
pub fn slug(name: &str) -> String {
    name.to_ascii_lowercase().replace(' ', "-")
}

/// Resolves a slug back to its catalog dataset.
pub fn dataset_for(s: &str) -> Option<Dataset> {
    Dataset::all().iter().copied().find(|d| slug(d.name()) == s)
}

impl Catalog {
    /// A catalog backed by the graph cache at `dir`.
    pub fn at(dir: impl Into<std::path::PathBuf>) -> Self {
        Catalog {
            cache: GraphCache::at(dir),
            loaded: Mutex::new(HashMap::new()),
        }
    }

    /// Loads (or returns the already-resident) graph for `slug` at
    /// `scale`/`seed`. Errors are strings destined for a 4xx body.
    pub fn load(&self, slug: &str, scale: f64, seed: u64) -> Result<Arc<LoadedGraph>, String> {
        let Some(ds) = dataset_for(slug) else {
            let known: Vec<String> = Dataset::all()
                .iter()
                .map(|d| crate::catalog::slug(d.name()))
                .collect();
            return Err(format!(
                "unknown graph {slug:?}; catalog: {}",
                known.join(", ")
            ));
        };
        if !(scale.is_finite() && scale > 0.0) {
            return Err(format!(
                "scale must be a positive finite number, got {scale}"
            ));
        }
        {
            let loaded = self.loaded.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(lg) = loaded.get(slug) {
                if lg.scale == scale && lg.seed == seed {
                    return Ok(Arc::clone(lg));
                }
            }
        }

        // Generate outside the registry lock: a big load must not
        // block queries against other resident graphs.
        let graph = Arc::new(self.cache.load_or_generate(ds, scale, seed));
        let n = graph.num_nodes();
        if n < 3 || graph.num_edges() == 0 {
            return Err(format!(
                "graph {slug:?} at scale {scale} has {n} nodes and {} edges; \
                 too small to serve",
                graph.num_edges()
            ));
        }
        let key = GraphCache::key(ds, scale, seed);
        // Deterministic adversary: sized off the honest graph, seeded
        // by the content key so every load sees the same region.
        let params = AttackParams {
            sybil_count: (n / 20).max(1),
            attack_edges: (n / 50).max(1),
            topology: SybilTopology::Random { avg_degree: 3.0 },
        };
        let mut rng = StdRng::seed_from_u64(key ^ 0x5bd1_e995);
        let attacked = Arc::new(attach_sybil_region(&graph, params, &mut rng));

        let lg = Arc::new(LoadedGraph {
            slug: slug.to_string(),
            name: ds.name(),
            key,
            scale,
            seed,
            graph,
            attacked,
        });
        LOADS.incr();
        let mut loaded = self.loaded.lock().unwrap_or_else(|e| e.into_inner());
        loaded.insert(slug.to_string(), Arc::clone(&lg));
        Ok(lg)
    }

    /// The resident graph for `slug`, if any.
    pub fn get(&self, slug: &str) -> Option<Arc<LoadedGraph>> {
        let loaded = self.loaded.lock().unwrap_or_else(|e| e.into_inner());
        loaded.get(slug).cloned()
    }

    /// Drops the resident graph for `slug`. In-flight queries holding
    /// the `Arc` finish against the old graph; memory frees when the
    /// last one drops it.
    pub fn evict(&self, slug: &str) -> bool {
        let mut loaded = self.loaded.lock().unwrap_or_else(|e| e.into_inner());
        let hit = loaded.remove(slug).is_some();
        if hit {
            EVICTS.incr();
        }
        hit
    }

    /// Slugs of every resident graph, sorted.
    pub fn list(&self) -> Vec<Arc<LoadedGraph>> {
        let loaded = self.loaded.lock().unwrap_or_else(|e| e.into_inner());
        let mut all: Vec<_> = loaded.values().cloned().collect();
        all.sort_by(|a, b| a.slug.cmp(&b.slug));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_cover_the_catalog_uniquely() {
        let mut seen = std::collections::HashSet::new();
        for ds in Dataset::all() {
            let s = slug(ds.name());
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "slug {s:?} is URL-safe"
            );
            assert!(seen.insert(s.clone()), "slug {s:?} is unique");
            assert_eq!(dataset_for(&s), Some(*ds), "round-trips");
        }
        assert_eq!(dataset_for("no-such-graph"), None);
    }

    #[test]
    fn load_get_evict_roundtrip() {
        let dir = std::env::temp_dir().join(format!("socmix-serve-cat-{}", std::process::id()));
        let cat = Catalog::at(&dir);
        let lg = cat.load("wiki-vote", 0.02, 7).expect("tiny load");
        assert!(lg.graph.num_nodes() > 2);
        assert!(lg.attacked.graph.num_nodes() > lg.graph.num_nodes());
        // Second load of the same triple is the same resident Arc.
        let again = cat.load("wiki-vote", 0.02, 7).expect("cached load");
        assert!(Arc::ptr_eq(&lg, &again));
        assert_eq!(cat.list().len(), 1);
        assert!(cat.evict("wiki-vote"));
        assert!(!cat.evict("wiki-vote"), "second evict is a miss");
        assert!(cat.get("wiki-vote").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_graphs_and_bad_scales_are_typed_errors() {
        let dir = std::env::temp_dir().join(format!("socmix-serve-cat2-{}", std::process::id()));
        let cat = Catalog::at(&dir);
        let err = cat.load("atlantis", 1.0, 0).expect_err("unknown slug");
        assert!(err.contains("unknown graph"));
        let err = cat.load("wiki-vote", -1.0, 0).expect_err("negative scale");
        assert!(err.contains("positive"));
        let err = cat.load("wiki-vote", f64::NAN, 0).expect_err("NaN scale");
        assert!(err.contains("positive"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
