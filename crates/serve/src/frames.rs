//! The frame-protocol listener: the same queries over the workspace's
//! length-prefixed wire format instead of HTTP.
//!
//! A frame is the shard protocol's `[opcode u8][len u64 LE][payload]`
//! (see `socmix_par::shard::frame`); query payloads and replies are
//! compact JSON documents, so a frame client and an HTTP client see
//! byte-identical answer bodies. Query opcodes live in `0x20..0x2f`,
//! replies in `0xa0..0xaf` — disjoint from both the shard opcodes
//! (`1..=8`) and the shard replies (`0x81..`), so a frame accidentally
//! sent to the wrong listener dies with a typed error instead of
//! being misinterpreted.
//!
//! | opcode | query | payload |
//! |--------|-------|---------|
//! | `0x20` | mix | `{"graph", "eps"}` |
//! | `0x21` | escape | `{"graph", "node", "w"}` |
//! | `0x22` | admit | `{"graph", "verifier", "suspects", "w"}` |
//! | `0x23` | metrics | `{}` |
//! | `0x24` | load | `{"graph", "scale", "seed"}` |
//! | `0x25` | evict | `{"graph"}` |
//!
//! Replies: `0xa0` OK (JSON body), `0xa1` error (JSON `{"error"}`
//! body), `0xa2` shed (overload; same JSON body as the HTTP 503).

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Instant;

use socmix_obs::Counter;
use socmix_par::shard::frame;

use crate::server::{dispatch, Shared, SHED_BODY};

/// Mixing-time query (`GET /mix` equivalent).
pub const OP_Q_MIX: u8 = 0x20;
/// Escape-probability probe (`GET /escape` equivalent).
pub const OP_Q_ESCAPE: u8 = 0x21;
/// SybilLimit admission (`POST /admit` equivalent).
pub const OP_Q_ADMIT: u8 = 0x22;
/// Metrics snapshot (`GET /metrics` equivalent).
pub const OP_Q_METRICS: u8 = 0x23;
/// Catalog load (`POST /load` equivalent).
pub const OP_Q_LOAD: u8 = 0x24;
/// Catalog evict (`POST /evict` equivalent).
pub const OP_Q_EVICT: u8 = 0x25;

/// Successful reply; payload is the JSON answer body.
pub const REPLY_Q_OK: u8 = 0xa0;
/// Failed reply; payload is a JSON `{"error": ...}` body.
pub const REPLY_Q_ERR: u8 = 0xa1;
/// Overload reply; payload matches the HTTP 503 shed body.
pub const REPLY_Q_SHED: u8 = 0xa2;

/// Query payloads are small JSON documents; anything bigger than this
/// is an attack or a bug, and is rejected before allocation.
const QUERY_CAP: u64 = 1 << 20;

/// Cap for queries whose payload is at most a graph name or empty (a
/// metrics snapshot, an evict): 4 KiB admits any real request while
/// rejecting a forged header three orders of magnitude earlier.
const QUERY_CAP_SMALL: u64 = 4 << 10;

/// Per-opcode payload cap, enforced on the frame header before any
/// allocation. Every routed opcode appears explicitly — socmix-lint's
/// protocol-exhaustiveness rule (SL010) holds this table and [`route`]
/// to the opcode list above, so adding a query without sizing its
/// payload fails `check`.
fn query_cap(op: u8) -> u64 {
    match op {
        OP_Q_MIX | OP_Q_ESCAPE | OP_Q_ADMIT | OP_Q_LOAD => QUERY_CAP,
        OP_Q_METRICS | OP_Q_EVICT => QUERY_CAP_SMALL,
        // Unknown opcodes get the small cap: enough to read the frame
        // and answer through `route`'s typed unknown-opcode reply.
        _ => QUERY_CAP_SMALL,
    }
}

static FRAME_QUERIES: Counter = Counter::new("serve.frame_queries");

/// Best-effort shed reply for a connection rejected at accept.
pub(crate) fn write_shed(stream: &mut TcpStream) {
    let mut w = BufWriter::new(stream);
    let _ = frame::write_frame(&mut w, REPLY_Q_SHED, SHED_BODY.as_bytes());
    let _ = w.flush();
}

/// Maps a frame opcode onto the shared dispatch's (method, path).
fn route(op: u8) -> Option<(&'static str, &'static str)> {
    match op {
        OP_Q_MIX => Some(("GET", "/mix")),
        OP_Q_ESCAPE => Some(("GET", "/escape")),
        OP_Q_ADMIT => Some(("POST", "/admit")),
        OP_Q_METRICS => Some(("GET", "/metrics")),
        OP_Q_LOAD => Some(("POST", "/load")),
        OP_Q_EVICT => Some(("POST", "/evict")),
        _ => None,
    }
}

/// Serves one frame connection until EOF or a malformed frame.
pub(crate) fn serve_frame_conn(shared: &Shared, stream: TcpStream, arrived: Instant) {
    super::server::frame_conn_opened();
    let _ = stream.set_nodelay(true);
    // Same idle policy as HTTP keep-alive: a silent client releases
    // the worker (and lets shutdown join it) instead of pinning it in
    // a read forever.
    let _ = stream.set_read_timeout(Some(super::server::IDLE_TIMEOUT));
    let mut writer = match stream.try_clone() {
        Ok(s) => BufWriter::new(s),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut first = true;
    loop {
        let (op, payload) = match frame::read_frame_capped(&mut reader, query_cap) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let body = format!("{{\"error\":{}}}", json_escape(&e.to_string()));
                let _ = frame::write_frame(&mut writer, REPLY_Q_ERR, body.as_bytes());
                let _ = writer.flush();
                return;
            }
            Err(_) => return,
        };
        FRAME_QUERIES.incr();
        // Same deadline policy as HTTP: the first query inherits the
        // queue wait, later ones restart the clock.
        let deadline = if first {
            arrived + shared.cfg.deadline
        } else {
            Instant::now() + shared.cfg.deadline
        };
        first = false;

        let (reply, body) = match route(op) {
            None => (
                REPLY_Q_ERR,
                format!("{{\"error\":\"unknown query opcode {op:#04x}\"}}"),
            ),
            Some((method, path)) => {
                let resp = dispatch(shared, method, path, &[], &payload, deadline);
                let reply = match resp.status {
                    200 => REPLY_Q_OK,
                    503 => REPLY_Q_SHED,
                    _ => REPLY_Q_ERR,
                };
                (reply, resp.body)
            }
        };
        if frame::write_frame(&mut writer, reply, body.as_bytes()).is_err()
            || writer.flush().is_err()
        {
            return;
        }
    }
}

/// Minimal JSON string escape for error messages built by hand.
fn json_escape(s: &str) -> String {
    socmix_obs::Value::Str(s.to_string()).to_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_spaces_are_disjoint_from_the_shard_protocol() {
        for op in [
            OP_Q_MIX,
            OP_Q_ESCAPE,
            OP_Q_ADMIT,
            OP_Q_METRICS,
            OP_Q_LOAD,
            OP_Q_EVICT,
        ] {
            assert!(route(op).is_some());
            assert!(
                !(1..=8).contains(&op) && op != frame::OP_DEBUG_TRUNCATE,
                "query opcode {op:#04x} collides with a shard opcode"
            );
        }
        for reply in [REPLY_Q_OK, REPLY_Q_ERR, REPLY_Q_SHED] {
            assert!(
                reply != frame::REPLY_ACK
                    && reply != frame::REPLY_DATA
                    && reply != frame::REPLY_SNAPSHOT
                    && reply != frame::REPLY_TRACE
                    && reply != frame::REPLY_ERR,
                "reply {reply:#04x} collides with a shard reply"
            );
        }
        assert!(
            route(frame::OP_APPLY).is_none(),
            "shard opcodes do not route"
        );
    }

    #[test]
    fn json_escape_quotes_and_backslashes() {
        assert_eq!(json_escape("plain"), "\"plain\"");
        let escaped = json_escape("a \"b\" \\ c");
        assert!(
            socmix_obs::parse(&escaped).is_ok(),
            "round-trips: {escaped}"
        );
    }
}
