//! Environment knobs for the serving layer — the crate's designated
//! env-read module (the `socmix-lint` SL003 stray-env-read rule scopes
//! environment access to modules like this one).
//!
//! Like every knob module in the workspace, the pattern is: the
//! environment is read in exactly one place, each raw value goes
//! through a *pure* parse function (testable without touching the
//! environment), and an invalid value warns once and falls back to the
//! default instead of being silently swallowed.
//!
//! | Variable                      | Meaning                                    | Default          |
//! |-------------------------------|--------------------------------------------|------------------|
//! | `SOCMIX_SERVE_ADDR`           | HTTP listener address                      | `127.0.0.1:7470` |
//! | `SOCMIX_SERVE_FRAME_ADDR`     | Frame-protocol listener address (empty=off)| off              |
//! | `SOCMIX_SERVE_THREADS`        | Connection-serving worker threads          | cores, min 4     |
//! | `SOCMIX_SERVE_QUEUE`          | Bounded accept-queue capacity              | `64`             |
//! | `SOCMIX_SERVE_DEADLINE_MS`    | Per-request deadline before shedding       | `2000`           |
//! | `SOCMIX_SERVE_BATCH_WINDOW_US`| Coalescing window for probe queries (0=off)| `500`            |
//! | `SOCMIX_SERVE_BATCH_MAX`      | Max coalesced queries per batch            | `64`             |

use std::time::Duration;

/// Resolved serving configuration. Plain data: the listeners and
/// worker pool read it, nothing here touches the network.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// HTTP listener bind address.
    pub addr: String,
    /// Frame-protocol listener bind address; `None` disables the
    /// second listener.
    pub frame_addr: Option<String>,
    /// Connection-serving worker threads (each serves one connection
    /// at a time; the accept queue bounds what waits behind them).
    pub threads: usize,
    /// Bounded accept-queue capacity; a connection arriving when the
    /// queue is full is shed with a typed 503 instead of queueing.
    pub queue: usize,
    /// Per-request deadline: time from accept to the answer being
    /// computed. Requests that age out in the queue or inside a batch
    /// wait are shed.
    pub deadline: Duration,
    /// How long the first query of a batch waits for others to
    /// coalesce before computing. Zero = per-request dispatch.
    pub batch_window: Duration,
    /// Maximum queries coalesced into one batch.
    pub batch_max: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7470".to_string(),
            frame_addr: None,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(4),
            queue: 64,
            deadline: Duration::from_millis(2000),
            batch_window: Duration::from_micros(500),
            batch_max: 64,
        }
    }
}

impl ServeConfig {
    /// Reads every `SOCMIX_SERVE_*` knob, warning once per invalid
    /// value and keeping the default.
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Ok(v) = std::env::var("SOCMIX_SERVE_ADDR") {
            if !v.trim().is_empty() {
                cfg.addr = v.trim().to_string();
            }
        }
        if let Ok(v) = std::env::var("SOCMIX_SERVE_FRAME_ADDR") {
            if !v.trim().is_empty() {
                cfg.frame_addr = Some(v.trim().to_string());
            }
        }
        cfg.threads = parsed_or(
            "SOCMIX_SERVE_THREADS",
            std::env::var("SOCMIX_SERVE_THREADS").ok().as_deref(),
            cfg.threads,
            1,
        );
        cfg.queue = parsed_or(
            "SOCMIX_SERVE_QUEUE",
            std::env::var("SOCMIX_SERVE_QUEUE").ok().as_deref(),
            cfg.queue,
            1,
        );
        cfg.deadline = Duration::from_millis(parsed_or(
            "SOCMIX_SERVE_DEADLINE_MS",
            std::env::var("SOCMIX_SERVE_DEADLINE_MS").ok().as_deref(),
            cfg.deadline.as_millis() as usize,
            1,
        ) as u64);
        cfg.batch_window = Duration::from_micros(parsed_or(
            "SOCMIX_SERVE_BATCH_WINDOW_US",
            std::env::var("SOCMIX_SERVE_BATCH_WINDOW_US")
                .ok()
                .as_deref(),
            cfg.batch_window.as_micros() as usize,
            0,
        ) as u64);
        cfg.batch_max = parsed_or(
            "SOCMIX_SERVE_BATCH_MAX",
            std::env::var("SOCMIX_SERVE_BATCH_MAX").ok().as_deref(),
            cfg.batch_max,
            1,
        );
        cfg
    }
}

/// Pure parse for one non-negative integer knob: `None` (unset) or a
/// valid value ≥ `min` resolves normally; anything else warns once per
/// knob and keeps `default`.
fn parsed_or(name: &str, raw: Option<&str>, default: usize, min: usize) -> usize {
    match raw {
        None => default,
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= min => n,
            _ => {
                socmix_obs::warn_once!(
                    "serve",
                    "ignoring invalid {name}={v:?}: expected an integer >= {min}, \
                     keeping {default}"
                );
                default
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_values_parse() {
        assert_eq!(parsed_or("K", Some("8"), 4, 1), 8);
        assert_eq!(parsed_or("K", Some(" 12 "), 4, 1), 12);
        assert_eq!(parsed_or("K", Some("0"), 4, 0), 0);
    }

    #[test]
    fn invalid_values_keep_the_default() {
        assert_eq!(parsed_or("K", None, 4, 1), 4);
        assert_eq!(parsed_or("K", Some("zero"), 4, 1), 4);
        assert_eq!(parsed_or("K", Some("-3"), 4, 1), 4);
        assert_eq!(parsed_or("K", Some("0"), 4, 1), 4, "below the floor");
        assert_eq!(parsed_or("K", Some(""), 4, 1), 4);
    }

    #[test]
    fn defaults_are_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.threads >= 4);
        assert!(cfg.queue >= 1);
        assert!(cfg.batch_max >= 1);
        assert!(cfg.frame_addr.is_none());
    }
}
