//! End-to-end tests over real sockets: both listeners, the answer
//! cache, batched-vs-per-request equivalence, and overload shedding.
//!
//! Every test binds its own server on an ephemeral port with its own
//! temp cache dir, so the suite parallelizes under the normal libtest
//! harness (no shard workers are spawned in-process).

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use socmix_par::shard::frame;
use socmix_serve::frames::{OP_Q_ESCAPE, OP_Q_MIX, REPLY_Q_ERR, REPLY_Q_OK};
use socmix_serve::{ServeConfig, Server, SHED_BODY};

/// A throwaway config bound to ephemeral ports.
fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        frame_addr: Some("127.0.0.1:0".to_string()),
        threads: 4,
        ..ServeConfig::default()
    }
}

fn temp_cache(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("socmix-serve-it-{tag}-{}", std::process::id()))
}

/// One `Connection: close` request; returns (status, body).
fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let req = format!(
        "{method} {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read reply");
    parse_reply(&reply)
}

fn parse_reply(reply: &[u8]) -> (u16, String) {
    let text = String::from_utf8_lossy(reply);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed reply: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn end_to_end_load_query_evict() {
    let dir = temp_cache("e2e");
    let server = Server::start(test_config(), &dir).expect("server starts");
    let addr = server.local_addr();

    let (status, body) = http(addr, "GET", "/health", "");
    assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));

    // Querying before loading is a routable 404, not an error.
    let (status, body) = http(addr, "GET", "/mix?graph=wiki-vote", "");
    assert_eq!(status, 404, "unloaded graph: {body}");
    assert!(body.contains("/load"));

    let (status, body) = http(addr, "POST", "/load?graph=wiki-vote&scale=0.02&seed=3", "");
    assert_eq!(status, 200, "load failed: {body}");
    let doc = socmix_obs::parse(&body).expect("load reply is JSON");
    assert!(
        doc.get("n")
            .and_then(socmix_obs::Value::as_i64)
            .unwrap_or(0)
            > 2
    );

    // /mix twice: the second answer must come from the cache and be
    // byte-identical.
    let (status, mix1) = http(addr, "GET", "/mix?graph=wiki-vote&eps=0.25", "");
    assert_eq!(status, 200, "mix failed: {mix1}");
    let (status, mix2) = http(addr, "GET", "/mix?graph=wiki-vote&eps=0.25", "");
    assert_eq!(status, 200);
    assert_eq!(mix1, mix2, "cached answer must serve the same bytes");
    let doc = socmix_obs::parse(&mix1).expect("mix reply is JSON");
    let mu = doc
        .get("mu")
        .and_then(socmix_obs::Value::as_f64)
        .expect("mu");
    assert!(mu > 0.0 && mu < 1.0);

    let (status, esc) = http(addr, "GET", "/escape?graph=wiki-vote&node=0&w=8", "");
    assert_eq!(status, 200, "escape failed: {esc}");
    let p = socmix_obs::parse(&esc)
        .expect("escape reply is JSON")
        .get("escape_probability")
        .and_then(socmix_obs::Value::as_f64)
        .expect("probability field");
    assert!((0.0..=1.0).contains(&p));

    let (status, adm) = http(
        addr,
        "POST",
        "/admit",
        "{\"graph\":\"wiki-vote\",\"verifier\":0,\"suspects\":[1,2,3],\"w\":10}",
    );
    assert_eq!(status, 200, "admit failed: {adm}");
    let verdicts = socmix_obs::parse(&adm).expect("admit reply is JSON");
    assert_eq!(
        verdicts
            .get("verdicts")
            .and_then(socmix_obs::Value::as_arr)
            .map(|a| a.len()),
        Some(3)
    );

    // The ops surface: /metrics parses and carries serve counters.
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let snap = socmix_obs::parse(&metrics).expect("/metrics must serve valid JSON");
    let rendered = snap.to_compact();
    assert!(
        rendered.contains("serve.requests"),
        "snapshot carries serve counters: {rendered}"
    );

    let (status, graphs) = http(addr, "GET", "/graphs", "");
    assert_eq!(status, 200);
    assert!(graphs.contains("wiki-vote"));

    let (status, body) = http(addr, "POST", "/evict?graph=wiki-vote", "");
    assert_eq!((status, body.as_str()), (200, "{\"evicted\":true}"));
    let (status, _) = http(addr, "GET", "/mix?graph=wiki-vote", "");
    assert_eq!(status, 404, "evicted graph is gone");

    let (status, body) = http(addr, "GET", "/no-such", "");
    assert_eq!(status, 404, "unknown endpoint: {body}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batched_and_per_request_serve_identical_bytes() {
    // Two servers over the same cache dir: one coalescing with a wide
    // window, one in per-request mode (window 0).
    let dir = temp_cache("batch");
    let mut batched_cfg = test_config();
    batched_cfg.batch_window = Duration::from_millis(20);
    let mut solo_cfg = test_config();
    solo_cfg.batch_window = Duration::ZERO;
    let batched = Server::start(batched_cfg, &dir).expect("batched server");
    let solo = Server::start(solo_cfg, &dir).expect("per-request server");

    for srv in [&batched, &solo] {
        let (status, body) = http(
            srv.local_addr(),
            "POST",
            "/load?graph=wiki-vote&scale=0.02&seed=3",
            "",
        );
        assert_eq!(status, 200, "load: {body}");
    }

    // Concurrent probes against the batched server coalesce; the
    // answers must still match the per-request server byte for byte.
    let nodes: Vec<u64> = (0..8).collect();
    let addr = batched.local_addr();
    let handles: Vec<_> = nodes
        .iter()
        .map(|&node| {
            std::thread::spawn(move || {
                http(
                    addr,
                    "GET",
                    &format!("/escape?graph=wiki-vote&node={node}&w=8"),
                    "",
                )
            })
        })
        .collect();
    let batched_bodies: Vec<(u64, String)> = nodes
        .iter()
        .zip(handles)
        .map(|(&node, h)| {
            let (status, body) = h.join().expect("probe thread");
            assert_eq!(status, 200, "batched probe: {body}");
            (node, body)
        })
        .collect();

    for (node, batched_body) in &batched_bodies {
        let (status, solo_body) = http(
            solo.local_addr(),
            "GET",
            &format!("/escape?graph=wiki-vote&node={node}&w=8"),
            "",
        );
        assert_eq!(status, 200);
        assert_eq!(
            &solo_body, batched_body,
            "node {node}: batched and per-request answers must be bit-identical"
        );
    }

    // The batched server actually coalesced: fewer batches than
    // queries. (Batch telemetry is process-global; both servers feed
    // it, so assert on the width histogram having seen > 1.)
    batched.shutdown();
    solo.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn frame_listener_matches_http_answers() {
    let dir = temp_cache("frames");
    let server = Server::start(test_config(), &dir).expect("server starts");
    let addr = server.local_addr();
    let frame_addr = server.frame_addr().expect("frame listener enabled");

    let (status, body) = http(addr, "POST", "/load?graph=wiki-vote&scale=0.02&seed=3", "");
    assert_eq!(status, 200, "load: {body}");
    let (_, http_mix) = http(addr, "GET", "/mix?graph=wiki-vote&eps=0.25", "");

    let stream = TcpStream::connect(frame_addr).expect("connect to frame listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);

    frame::write_frame(
        &mut writer,
        OP_Q_MIX,
        b"{\"graph\":\"wiki-vote\",\"eps\":0.25}",
    )
    .expect("send mix query");
    writer.flush().expect("flush");
    let (op, payload) = frame::read_frame(&mut reader).expect("mix reply");
    assert_eq!(
        op,
        REPLY_Q_OK,
        "reply: {}",
        String::from_utf8_lossy(&payload)
    );
    assert_eq!(
        String::from_utf8_lossy(&payload),
        http_mix,
        "frame and HTTP answers must be byte-identical"
    );

    // Same connection, second query: escape.
    frame::write_frame(
        &mut writer,
        OP_Q_ESCAPE,
        b"{\"graph\":\"wiki-vote\",\"node\":0,\"w\":8}",
    )
    .expect("send escape query");
    writer.flush().expect("flush");
    let (op, payload) = frame::read_frame(&mut reader).expect("escape reply");
    assert_eq!(op, REPLY_Q_OK);
    let (_, http_esc) = http(addr, "GET", "/escape?graph=wiki-vote&node=0&w=8", "");
    assert_eq!(String::from_utf8_lossy(&payload), http_esc);

    // Unknown opcode: typed error, not a hang or disconnect-mid-frame.
    frame::write_frame(&mut writer, 0x6f, b"{}").expect("send bogus opcode");
    writer.flush().expect("flush");
    let (op, payload) = frame::read_frame(&mut reader).expect("error reply");
    assert_eq!(op, REPLY_Q_ERR);
    assert!(String::from_utf8_lossy(&payload).contains("unknown query opcode"));

    // Release the worker serving this connection before joining it.
    drop(writer);
    drop(reader);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_with_typed_503_not_a_hang() {
    let dir = temp_cache("overload");
    let mut cfg = test_config();
    cfg.threads = 1;
    cfg.queue = 1;
    cfg.deadline = Duration::from_millis(100);
    let server = Server::start(cfg, &dir).expect("server starts");
    let addr = server.local_addr();

    // Occupy the only worker with an idle keep-alive connection.
    let mut hog = TcpStream::connect(addr).expect("hog connects");
    hog.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    hog.write_all(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("hog request");
    let mut buf = [0u8; 512];
    let n = hog.read(&mut buf).expect("hog gets served");
    assert!(String::from_utf8_lossy(&buf[..n]).starts_with("HTTP/1.1 200"));

    // Fill the queue (this connection waits behind the hog)...
    let queued = TcpStream::connect(addr).expect("queued connects");

    // ...then every further connection must be shed at the door with
    // the typed 503, immediately.
    std::thread::sleep(Duration::from_millis(50));
    let mut shed_seen = 0;
    for _ in 0..5 {
        let mut extra = TcpStream::connect(addr).expect("extra connects");
        extra
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut reply = Vec::new();
        extra.read_to_end(&mut reply).expect("extra gets an answer");
        let (status, body) = parse_reply(&reply);
        if status == 503 {
            assert_eq!(body, SHED_BODY, "shed body is the typed overload JSON");
            shed_seen += 1;
        }
    }
    assert!(
        shed_seen >= 4,
        "full queue sheds at accept, saw {shed_seen}/5"
    );

    // The queued connection outlived its 100ms deadline while the hog
    // held the worker: it must be shed too, not served stale.
    std::thread::sleep(Duration::from_millis(100));
    drop(hog);
    let mut queued = queued;
    queued
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reply = Vec::new();
    queued
        .read_to_end(&mut reply)
        .expect("queued gets an answer");
    let (status, body) = parse_reply(&reply);
    assert_eq!(status, 503, "aged-out queued connection sheds: {body}");
    assert_eq!(body, SHED_BODY);

    // And the server still serves fresh traffic afterwards.
    let (status, body) = http(addr, "GET", "/health", "");
    assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
