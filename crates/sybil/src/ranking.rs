//! Ranking-based view of Sybil defenses (Viswanath et al., SIGCOMM
//! 2010).
//!
//! The paper's §2 summarizes Viswanath's finding: SybilGuard,
//! SybilLimit, SybilInfer and SumUp all effectively *rank* nodes by
//! how well connected they are to the trusted verifier, then cut the
//! ranking somewhere. This module makes that reduction concrete —
//! rank by personalized PageRank from the verifier — and evaluates
//! how well any node-ranking separates honest from Sybil under the
//! standard AUC metric, so the community-structure sensitivity both
//! papers describe can be measured directly.

use crate::attack::AttackedGraph;
use socmix_graph::NodeId;
use socmix_markov::pagerank::{personalized_pagerank, PagerankOptions};

/// A ranking evaluation against Sybil ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct RankingEvaluation {
    /// Area under the ROC curve of `score(honest) > score(sybil)`
    /// (1.0 = perfect separation, 0.5 = chance).
    pub auc: f64,
    /// Fraction of the top-`honest_count` ranks that are honest —
    /// the accuracy of the natural cutoff.
    pub precision_at_cutoff: f64,
}

/// Evaluates an arbitrary per-node score (higher = more trusted)
/// against the attacked graph's ground truth.
pub fn evaluate_ranking(attacked: &AttackedGraph, scores: &[f64]) -> RankingEvaluation {
    let n = attacked.graph.num_nodes();
    assert_eq!(scores.len(), n);
    let honest_count = attacked.honest;
    let sybil_count = n - honest_count;
    assert!(honest_count > 0 && sybil_count > 0, "need both classes");

    // AUC by rank statistics: sort ascending, sum honest ranks.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    // Midrank ties for an unbiased AUC.
    let mut rank = vec![0.0f64; n];
    let mut i = 0usize;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for &v in &order[i..=j] {
            rank[v] = mid;
        }
        i = j + 1;
    }
    let honest_rank_sum: f64 = (0..honest_count).map(|v| rank[v]).sum();
    let auc = (honest_rank_sum - honest_count as f64 * (honest_count as f64 + 1.0) / 2.0)
        / (honest_count as f64 * sybil_count as f64);

    // precision at the natural cutoff
    let honest_in_top = order[n - honest_count..]
        .iter()
        .filter(|&&v| v < honest_count)
        .count();
    RankingEvaluation {
        auc,
        precision_at_cutoff: honest_in_top as f64 / honest_count as f64,
    }
}

/// Ranks nodes by *degree-normalized* personalized PageRank from
/// `verifier` and evaluates the separation — the canonical
/// random-walk-defense ranking. (Degree normalization matches the
/// defenses' per-edge admission accounting.)
pub fn pagerank_ranking(attacked: &AttackedGraph, verifier: NodeId) -> RankingEvaluation {
    assert!(
        !attacked.is_sybil(verifier),
        "the verifier must be an honest trust anchor"
    );
    let g = &attacked.graph;
    let ppr = personalized_pagerank(g, verifier, PagerankOptions::default());
    let scores: Vec<f64> = (0..g.num_nodes())
        .map(|v| ppr[v] / g.degree(v as NodeId).max(1) as f64)
        .collect();
    evaluate_ranking(attacked, &scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{attach_sybil_region, AttackParams, SybilTopology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socmix_gen::ba::barabasi_albert;
    use socmix_gen::social::SocialParams;

    fn attacked_on(honest: &socmix_graph::Graph, edges: usize, seed: u64) -> AttackedGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        attach_sybil_region(
            honest,
            AttackParams {
                sybil_count: honest.num_nodes() / 3,
                attack_edges: edges,
                topology: SybilTopology::Random { avg_degree: 5.0 },
            },
            &mut rng,
        )
    }

    #[test]
    fn perfect_scores_give_auc_one() {
        let honest = barabasi_albert(60, 3, &mut StdRng::seed_from_u64(0));
        let a = attacked_on(&honest, 3, 1);
        let scores: Vec<f64> = (0..a.graph.num_nodes())
            .map(|v| if v < a.honest { 1.0 } else { 0.0 })
            .collect();
        let e = evaluate_ranking(&a, &scores);
        assert!((e.auc - 1.0).abs() < 1e-12);
        assert!((e.precision_at_cutoff - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_scores_give_auc_half() {
        let honest = barabasi_albert(60, 3, &mut StdRng::seed_from_u64(0));
        let a = attacked_on(&honest, 3, 1);
        let e = evaluate_ranking(&a, &vec![0.5; a.graph.num_nodes()]);
        assert!(
            (e.auc - 0.5).abs() < 1e-9,
            "midranked ties must give 0.5, got {}",
            e.auc
        );
    }

    #[test]
    fn pagerank_separates_on_fast_graph() {
        let honest = barabasi_albert(300, 4, &mut StdRng::seed_from_u64(2));
        let a = attacked_on(&honest, 5, 3);
        let e = pagerank_ranking(&a, 0);
        assert!(
            e.auc > 0.9,
            "few attack edges on an expander: AUC {}",
            e.auc
        );
    }

    #[test]
    fn more_attack_edges_weaken_ranking() {
        let honest = barabasi_albert(300, 4, &mut StdRng::seed_from_u64(2));
        let weak = pagerank_ranking(&attacked_on(&honest, 3, 5), 0);
        let strong = pagerank_ranking(&attacked_on(&honest, 120, 5), 0);
        assert!(
            strong.auc < weak.auc,
            "more attack edges must hurt: {} vs {}",
            weak.auc,
            strong.auc
        );
    }

    #[test]
    fn community_structure_hurts_ranking() {
        // Viswanath's observation, reproduced: same attack budget,
        // but the community-structured honest graph ranks honest
        // nodes in *other* communities poorly
        let fast = barabasi_albert(400, 4, &mut StdRng::seed_from_u64(4));
        let slow = SocialParams {
            nodes: 400,
            avg_degree: 8.0,
            community_size: 25,
            inter_fraction: 0.01,
            gamma: 2.6,
        }
        .generate(&mut StdRng::seed_from_u64(4));
        let ef = pagerank_ranking(&attacked_on(&fast, 10, 6), 0);
        let es = pagerank_ranking(&attacked_on(&slow, 10, 6), 0);
        assert!(
            es.auc < ef.auc,
            "community structure should hurt the ranking: fast {} vs slow {}",
            ef.auc,
            es.auc
        );
    }

    #[test]
    #[should_panic]
    fn sybil_verifier_rejected() {
        let honest = barabasi_albert(50, 3, &mut StdRng::seed_from_u64(0));
        let a = attacked_on(&honest, 2, 1);
        let sybil_id = a.honest as NodeId;
        let _ = pagerank_ranking(&a, sybil_id);
    }
}
