//! SybilLimit (Yu, Gibbons, Kaminsky, Xiao — IEEE S&P 2008).
//!
//! The protocol, as the IMC'10 paper exercises it:
//!
//! - `r = r₀·√m` independent random-route instances; in each, every
//!   node has one route of length `w`.
//! - A **suspect** registers its identity at the *tail* (last
//!   directed edge) of each of its `r` routes.
//! - A **verifier** collects its own `r` tails. It accepts a suspect
//!   when (1) *intersection*: some verifier tail is an edge where the
//!   suspect registered, and (2) *balance*: assigning the suspect to
//!   the least-loaded intersecting tail keeps that tail's load under
//!   `h·max(ln r, a·(A+1)/r)` where `A` counts accepted suspects.
//!
//! `r₀` comes from the birthday paradox (the IMC paper: "We set r to
//! r₀√m … r₀ is computed from the birthday paradox to guarantee a
//! given intersection probability"): two sets of `r₀√m` near-uniform
//! tails over `2m` directed edges intersect with probability
//! `≈ 1 − exp(−r₀²/2)` — but only once walks are *long enough to
//! reach the edge-stationary distribution*, which is exactly why slow
//! mixing hurts admission (the paper's Figure 8).

use crate::route::{DirectedEdge, RouteInstance};
use socmix_graph::{Graph, NodeId};
use socmix_obs::{obs_debug, Counter};
use socmix_par::Pool;
use std::collections::HashMap;

/// Random routes walked (one per node per instance per tail batch).
static WALKS: Counter = Counter::new("sybil.walks");
/// Suspect tail sets checked against a verifier's tails.
static INTERSECTION_CHECKS: Counter = Counter::new("sybil.intersection.checks");

/// SybilLimit protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SybilLimitParams {
    /// Route count multiplier: `r = ceil(r₀·√m)`.
    pub r0: f64,
    /// Random-route length.
    pub w: usize,
    /// Balance-condition multiplier `h` (the paper's implementation
    /// note; SybilLimit uses a small constant — 4 is customary).
    pub balance_h: f64,
    /// Balance-condition load factor `a` in `h·max(ln r, a·(A+1)/r)`.
    pub balance_a: f64,
    /// Seed deriving every instance's routing tables.
    pub seed: u64,
}

impl Default for SybilLimitParams {
    fn default() -> Self {
        SybilLimitParams {
            r0: 3.0,
            w: 10,
            balance_h: 4.0,
            balance_a: 1.0,
            seed: 0,
        }
    }
}

/// A configured SybilLimit protocol over one (composite) graph.
///
/// # Example
///
/// ```
/// use socmix_sybil::{SybilLimit, SybilLimitParams};
/// let g = socmix_gen::fixtures::complete(30);
/// let sl = SybilLimit::new(&g, SybilLimitParams { w: 6, ..Default::default() });
/// let v = sl.verify_all(0, &[1, 2, 3]);
/// // on a clique, tails are stationary immediately: everyone admits
/// assert!(v.accepted_fraction() > 0.9);
/// ```
pub struct SybilLimit<'g> {
    graph: &'g Graph,
    params: SybilLimitParams,
    r: usize,
    pool: Pool,
}

impl<'g> SybilLimit<'g> {
    /// Sets up the protocol; `r` is derived from the graph's edge
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges or `w == 0`.
    pub fn new(graph: &'g Graph, params: SybilLimitParams) -> Self {
        assert!(graph.num_edges() > 0, "SybilLimit needs edges");
        assert!(params.w >= 1, "route length must be ≥ 1");
        assert!(params.r0 > 0.0);
        let r = ((params.r0 * (graph.num_edges() as f64).sqrt()).ceil() as usize).max(1);
        SybilLimit {
            graph,
            params,
            r,
            pool: Pool::new(),
        }
    }

    /// Number of route instances `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Sets the thread pool route instances are evaluated on. Verdicts
    /// are independent of the pool width — instances are seeded by
    /// index, not by worker.
    pub fn pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// The parameters in force.
    pub fn params(&self) -> &SybilLimitParams {
        self.params_ref()
    }

    fn params_ref(&self) -> &SybilLimitParams {
        &self.params
    }

    /// Tail sets for the given nodes: `tails[k][i]` is node `k`'s
    /// tail in instance `i`. Instances are processed in parallel
    /// (each is an independent O(m + |nodes|·w·log) pass).
    pub fn tails_for(&self, nodes: &[NodeId]) -> Vec<Vec<DirectedEdge>> {
        let g = self.graph;
        let seed = self.params.seed;
        let w = self.params.w;
        WALKS.add((self.r * nodes.len()) as u64);
        obs_debug!(
            "sybil",
            "computing tails for {} nodes over r={} instances (w={w})",
            nodes.len(),
            self.r
        );
        let by_instance: Vec<Vec<DirectedEdge>> = self.pool.map_indexed(self.r, move |i| {
            let inst = RouteInstance::new(g, seed, i as u32);
            inst.tails(g, nodes, w)
        });
        // transpose to node-major
        let mut out = vec![Vec::with_capacity(self.r); nodes.len()];
        for inst_tails in by_instance {
            for (k, t) in inst_tails.into_iter().enumerate() {
                out[k].push(t);
            }
        }
        out
    }

    /// Runs verification of `suspects` against `verifier`, applying
    /// both protocol conditions in the order suspects are given
    /// (balance is stateful). Returns one flag per suspect plus the
    /// counts the experiments report.
    pub fn verify_all(&self, verifier: NodeId, suspects: &[NodeId]) -> Verification {
        // one pass computes every tail set (verifier last to reuse
        // the batch)
        let mut all: Vec<NodeId> = suspects.to_vec();
        all.push(verifier);
        let mut tails = self.tails_for(&all);
        let verifier_tails = tails.pop().expect("verifier tails");

        // index the verifier's tails for O(1) intersection lookups;
        // a tail edge can recur across instances — keep every slot
        let mut tail_slots: HashMap<DirectedEdge, Vec<usize>> = HashMap::new();
        for (slot, &e) in verifier_tails.iter().enumerate() {
            tail_slots.entry(e).or_default().push(slot);
        }
        let mut loads = vec![0usize; verifier_tails.len()];
        let mut accepted_count = 0usize;
        let mut accepted = Vec::with_capacity(suspects.len());
        let mut intersected = Vec::with_capacity(suspects.len());
        let r = self.r as f64;
        for suspect_tails in &tails {
            // intersection condition
            INTERSECTION_CHECKS.incr();
            let mut slots: Vec<usize> = suspect_tails
                .iter()
                .filter_map(|e| tail_slots.get(e))
                .flatten()
                .copied()
                .collect();
            slots.sort_unstable();
            slots.dedup();
            let hit = !slots.is_empty();
            intersected.push(hit);
            if !hit {
                accepted.push(false);
                continue;
            }
            // balance condition
            let threshold = self.params.balance_h
                * (r.ln()).max(self.params.balance_a * (accepted_count as f64 + 1.0) / r);
            let best = slots
                .iter()
                .copied()
                .min_by_key(|&s| loads[s])
                .expect("nonempty");
            if (loads[best] + 1) as f64 > threshold {
                accepted.push(false);
                continue;
            }
            loads[best] += 1;
            accepted_count += 1;
            accepted.push(true);
        }
        Verification {
            accepted,
            intersected,
            r: self.r,
        }
    }
}

/// The result of the walk-length benchmarking procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkLengthEstimate {
    /// Smallest tested `w` whose admission rate met the target.
    pub w: usize,
    /// Admission rate achieved at that `w`.
    pub admission: f64,
    /// Number of doubling rounds used.
    pub rounds: usize,
}

/// SybilLimit's *benchmarking technique* for choosing `w` without
/// knowing the mixing time (S&P'08 §4.3, exercised by the IMC paper's
/// Figure-8 experiment): the verifier samples suspects it believes
/// honest, runs the protocol on itself, and doubles `w` until the
/// sampled admission rate reaches the target. On a fast-mixing graph
/// this stops at small `w`; on a slow-mixing graph it keeps doubling —
/// which is exactly how slow mixing silently converts into longer
/// walks (and a proportionally larger Sybil bound `g·w`).
///
/// Returns `None` if the target is not reached by `w_max`.
pub fn benchmark_walk_length(
    graph: &Graph,
    verifier: NodeId,
    sample: &[NodeId],
    target_rate: f64,
    params: SybilLimitParams,
    w_max: usize,
) -> Option<WalkLengthEstimate> {
    assert!((0.0..=1.0).contains(&target_rate));
    assert!(!sample.is_empty(), "benchmark needs a suspect sample");
    let mut w = params.w.max(1);
    let mut rounds = 0usize;
    while w <= w_max {
        rounds += 1;
        let sl = SybilLimit::new(graph, SybilLimitParams { w, ..params });
        let admission = sl.verify_all(verifier, sample).accepted_fraction();
        if admission >= target_rate {
            return Some(WalkLengthEstimate {
                w,
                admission,
                rounds,
            });
        }
        w *= 2;
    }
    None
}

/// Outcome of a [`SybilLimit::verify_all`] run.
#[derive(Debug, Clone)]
pub struct Verification {
    /// Final accept/reject per suspect (intersection ∧ balance).
    pub accepted: Vec<bool>,
    /// Whether the intersection condition alone held per suspect.
    pub intersected: Vec<bool>,
    /// The `r` used.
    pub r: usize,
}

impl Verification {
    /// Fraction of suspects accepted.
    pub fn accepted_fraction(&self) -> f64 {
        if self.accepted.is_empty() {
            return 0.0;
        }
        self.accepted.iter().filter(|&&a| a).count() as f64 / self.accepted.len() as f64
    }

    /// Fraction passing the intersection condition (ignoring
    /// balance).
    pub fn intersection_fraction(&self) -> f64 {
        if self.intersected.is_empty() {
            return 0.0;
        }
        self.intersected.iter().filter(|&&a| a).count() as f64 / self.intersected.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socmix_gen::ba::barabasi_albert;
    use socmix_gen::fixtures;

    fn fast_graph() -> socmix_graph::Graph {
        barabasi_albert(300, 4, &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn pool_width_does_not_change_verdicts() {
        let g = fast_graph();
        let params = SybilLimitParams {
            w: 6,
            ..Default::default()
        };
        let suspects: Vec<_> = (1..40).collect();
        let serial = SybilLimit::new(&g, params)
            .pool(Pool::serial())
            .verify_all(0, &suspects);
        let par = SybilLimit::new(&g, params)
            .pool(Pool::with_threads(4))
            .verify_all(0, &suspects);
        assert_eq!(serial.accepted, par.accepted);
    }

    #[test]
    fn r_scales_with_sqrt_m() {
        let g = fast_graph();
        let sl = SybilLimit::new(
            &g,
            SybilLimitParams {
                r0: 2.0,
                ..Default::default()
            },
        );
        let expect = (2.0 * (g.num_edges() as f64).sqrt()).ceil() as usize;
        assert_eq!(sl.r(), expect);
    }

    #[test]
    fn tails_shape() {
        let g = fixtures::petersen();
        let sl = SybilLimit::new(
            &g,
            SybilLimitParams {
                r0: 1.0,
                w: 5,
                ..Default::default()
            },
        );
        let tails = sl.tails_for(&[0, 5]);
        assert_eq!(tails.len(), 2);
        assert!(tails.iter().all(|t| t.len() == sl.r()));
        // tails are real edges
        for ts in &tails {
            for &(a, b) in ts {
                assert!(g.has_edge(a, b));
            }
        }
    }

    #[test]
    fn long_walks_admit_most_honest_nodes_on_fast_graph() {
        let g = fast_graph();
        let sl = SybilLimit::new(
            &g,
            SybilLimitParams {
                r0: 3.0,
                w: 15,
                ..Default::default()
            },
        );
        let suspects: Vec<NodeId> = (0..100).collect();
        let v = sl.verify_all(200, &suspects);
        assert!(
            v.accepted_fraction() > 0.9,
            "expected ≥90% admission on an expander, got {}",
            v.accepted_fraction()
        );
    }

    #[test]
    fn tiny_walks_admit_fewer() {
        // w=1 tails are concentrated near each node: intersection
        // rarely happens between distant nodes
        let g = fast_graph();
        let short = SybilLimit::new(
            &g,
            SybilLimitParams {
                r0: 3.0,
                w: 1,
                ..Default::default()
            },
        );
        let long = SybilLimit::new(
            &g,
            SybilLimitParams {
                r0: 3.0,
                w: 15,
                ..Default::default()
            },
        );
        let suspects: Vec<NodeId> = (0..100).collect();
        let fs = short.verify_all(200, &suspects).accepted_fraction();
        let fl = long.verify_all(200, &suspects).accepted_fraction();
        assert!(fs < fl, "short walks {fs} should admit less than long {fl}");
    }

    #[test]
    fn verifier_accepts_itself_with_long_walks() {
        let g = fast_graph();
        let sl = SybilLimit::new(
            &g,
            SybilLimitParams {
                r0: 3.0,
                w: 15,
                ..Default::default()
            },
        );
        let v = sl.verify_all(0, &[0]);
        assert!(v.accepted[0], "identical tail sets must intersect");
    }

    #[test]
    fn balance_condition_limits_over_acceptance() {
        // funnel many suspects through a tiny r: balance must reject
        // some that pass intersection
        let g = fixtures::complete(20);
        let sl = SybilLimit::new(
            &g,
            SybilLimitParams {
                r0: 0.2,
                w: 8,
                balance_h: 1.0,
                balance_a: 0.5,
                seed: 0,
            },
        );
        let suspects: Vec<NodeId> = (0..20).flat_map(|v| std::iter::repeat_n(v, 5)).collect();
        let v = sl.verify_all(0, &suspects);
        let inter = v.intersection_fraction();
        let acc = v.accepted_fraction();
        assert!(
            acc < inter,
            "balance should bite: accepted {acc} vs intersected {inter}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = fast_graph();
        let p = SybilLimitParams {
            r0: 1.5,
            w: 6,
            seed: 42,
            ..Default::default()
        };
        let a = SybilLimit::new(&g, p).verify_all(0, &[1, 2, 3, 4, 5]);
        let b = SybilLimit::new(&g, p).verify_all(0, &[1, 2, 3, 4, 5]);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn benchmarking_finds_small_w_on_fast_graph() {
        let g = fast_graph();
        let sample: Vec<NodeId> = (0..60).collect();
        let est = benchmark_walk_length(
            &g,
            200,
            &sample,
            0.9,
            SybilLimitParams {
                r0: 3.0,
                w: 2,
                ..Default::default()
            },
            256,
        )
        .expect("expander should reach 90% admission");
        assert!(
            est.w <= 16,
            "fast graph should need few doublings, got w={}",
            est.w
        );
        assert!(est.admission >= 0.9);
    }

    #[test]
    fn benchmarking_needs_longer_w_on_slow_graph() {
        use rand::rngs::StdRng as SR;
        let slow = socmix_gen::social::SocialParams {
            nodes: 400,
            avg_degree: 8.0,
            community_size: 25,
            inter_fraction: 0.04,
            gamma: 2.6,
        }
        .generate(&mut SR::seed_from_u64(3));
        let fast = fast_graph();
        let sample_s: Vec<NodeId> = (0..60).collect();
        let params = SybilLimitParams {
            r0: 3.0,
            w: 2,
            ..Default::default()
        };
        let ws = benchmark_walk_length(&slow, 200, &sample_s, 0.9, params, 4096)
            .expect("slow graph should still converge");
        let wf = benchmark_walk_length(&fast, 200, &sample_s, 0.9, params, 4096).unwrap();
        assert!(
            ws.w > wf.w,
            "slow graph must need longer walks ({} vs {})",
            wf.w,
            ws.w
        );
    }

    #[test]
    fn benchmarking_respects_budget() {
        let g = fast_graph();
        let sample: Vec<NodeId> = (0..30).collect();
        // unreachable target within a w_max of 2
        let est = benchmark_walk_length(
            &g,
            200,
            &sample,
            1.01_f64.min(1.0), // 100% with a tiny budget
            SybilLimitParams {
                r0: 0.2,
                w: 1,
                ..Default::default()
            },
            2,
        );
        assert!(est.is_none());
    }

    #[test]
    #[should_panic]
    fn zero_w_rejected() {
        let g = fixtures::petersen();
        let _ = SybilLimit::new(
            &g,
            SybilLimitParams {
                w: 0,
                ..Default::default()
            },
        );
    }
}
