//! SumUp (Tran, Min, Li, Subramanian — NSDI 2009).
//!
//! The vote-aggregation Sybil defense the paper's §2 lists among the
//! systems Viswanath decomposed: a *vote collector* accepts at most
//! one vote per voter, routed as unit flows over the social graph, so
//! an attacker's votes are capped by the capacity of its attack
//! edges.
//!
//! Protocol (as implemented here, following the NSDI paper's
//! adaptive-ticket construction):
//!
//! 1. Pick an expected vote count `ρ`. Starting with `ρ` tickets at
//!    the collector, distribute tickets outward level by level (BFS
//!    from the collector): each node splits its tickets evenly over
//!    its edges to the next level; an edge that receives `t` tickets
//!    has capacity `t + 1`, and edges beyond the ticket envelope have
//!    capacity 1.
//! 2. Each voter is linked to a super-source with capacity 1; the
//!    accepted votes are the max-flow to the collector.
//!
//! The mixing-time connection: SumUp's envelope assumes votes
//! (honest voters) are *reachable within a shallow neighborhood* of
//! the collector — in a slow-mixing graph, honest voters in other
//! communities sit outside the envelope and compete for unit
//! capacity, so honest votes are dropped. The tests measure exactly
//! that.

use crate::attack::AttackedGraph;
use socmix_graph::flow::FlowNetwork;
use socmix_graph::traversal::bfs_distances;
use socmix_graph::{Graph, NodeId};

/// SumUp configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SumUpParams {
    /// Expected number of votes `ρ` (tickets issued at the
    /// collector). The NSDI paper adapts ρ by doubling; callers can
    /// do the same loop with [`collect_votes`].
    pub rho: usize,
}

impl Default for SumUpParams {
    fn default() -> Self {
        SumUpParams { rho: 32 }
    }
}

/// Result of a vote collection round.
#[derive(Debug, Clone)]
pub struct VoteOutcome {
    /// Number of votes accepted (max-flow value).
    pub accepted: usize,
    /// Number of voters that attempted to vote.
    pub attempted: usize,
}

impl VoteOutcome {
    /// Fraction of attempted votes collected.
    pub fn acceptance(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.accepted as f64 / self.attempted as f64
        }
    }
}

/// Assigns SumUp edge capacities: `t + 1` where `t` is the ticket
/// count reaching that edge in the level-by-level distribution.
///
/// Returns capacities aligned with `g.edges()` order.
pub fn ticket_capacities(g: &Graph, collector: NodeId, rho: usize) -> Vec<(NodeId, NodeId, i64)> {
    let dist = bfs_distances(g, collector);
    // tickets per node, distributed level by level
    let mut tickets = vec![0f64; g.num_nodes()];
    tickets[collector as usize] = rho as f64;
    // process nodes in BFS-distance order
    let mut order: Vec<NodeId> = g
        .nodes()
        .filter(|&v| dist[v as usize] != socmix_graph::traversal::UNREACHED)
        .collect();
    order.sort_by_key(|&v| dist[v as usize]);
    // per-edge tickets keyed by canonical pair
    let mut edge_tickets: std::collections::HashMap<(NodeId, NodeId), f64> =
        std::collections::HashMap::new();
    for &v in &order {
        // a non-collector node consumes one ticket and forwards the rest
        let forward = if v == collector {
            tickets[v as usize]
        } else {
            (tickets[v as usize] - 1.0).max(0.0)
        };
        if forward <= 0.0 {
            continue;
        }
        let down: Vec<NodeId> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| dist[u as usize] == dist[v as usize] + 1)
            .collect();
        if down.is_empty() {
            continue;
        }
        let share = forward / down.len() as f64;
        for u in down {
            let key = (v.min(u), v.max(u));
            *edge_tickets.entry(key).or_insert(0.0) += share;
            tickets[u as usize] += share;
        }
    }
    g.edges()
        .map(|(u, v)| {
            let t = edge_tickets.get(&(u, v)).copied().unwrap_or(0.0);
            (u, v, t.floor() as i64 + 1)
        })
        .collect()
}

/// Collects votes from `voters` at `collector` over graph `g`.
pub fn collect_votes(
    g: &Graph,
    collector: NodeId,
    voters: &[NodeId],
    params: SumUpParams,
) -> VoteOutcome {
    assert!(g.num_nodes() > 1 && g.num_edges() > 0);
    assert!((collector as usize) < g.num_nodes());
    let n = g.num_nodes();
    let source = n as NodeId; // super-source
    let mut net = FlowNetwork::new(n + 1);
    for (u, v, c) in ticket_capacities(g, collector, params.rho) {
        net.add_undirected_edge(u, v, c);
    }
    let mut attempted = 0usize;
    for &v in voters {
        if v == collector {
            continue;
        }
        net.add_edge(source, v, 1);
        attempted += 1;
    }
    let accepted = net.max_flow(source, collector) as usize;
    VoteOutcome {
        accepted,
        attempted,
    }
}

/// Sybil vote yield: all Sybil identities vote; returns how many get
/// through — bounded by the attack edges' total capacity.
pub fn sybil_votes(
    attacked: &AttackedGraph,
    collector: NodeId,
    params: SumUpParams,
) -> VoteOutcome {
    assert!(!attacked.is_sybil(collector), "collector must be honest");
    let sybils: Vec<NodeId> = attacked.sybil_nodes().collect();
    collect_votes(&attacked.graph, collector, &sybils, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{attach_sybil_region, AttackParams, SybilTopology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socmix_gen::ba::barabasi_albert;
    use socmix_gen::social::SocialParams;

    #[test]
    fn ticket_capacities_positive_and_decay() {
        let g = barabasi_albert(200, 3, &mut StdRng::seed_from_u64(0));
        let caps = ticket_capacities(&g, 0, 64);
        assert_eq!(caps.len(), g.num_edges());
        assert!(caps.iter().all(|&(_, _, c)| c >= 1));
        // edges touching the collector carry the most tickets
        let near: i64 = caps
            .iter()
            .filter(|&&(u, v, _)| u == 0 || v == 0)
            .map(|&(_, _, c)| c)
            .max()
            .unwrap();
        let far_avg: f64 = {
            let far: Vec<i64> = caps
                .iter()
                .filter(|&&(u, v, _)| u != 0 && v != 0)
                .map(|&(_, _, c)| c)
                .collect();
            far.iter().sum::<i64>() as f64 / far.len() as f64
        };
        assert!(near as f64 > far_avg, "capacity must decay outward");
    }

    #[test]
    fn honest_votes_mostly_collected_on_fast_graph() {
        let g = barabasi_albert(300, 4, &mut StdRng::seed_from_u64(1));
        let voters: Vec<NodeId> = (1..60).collect();
        let out = collect_votes(&g, 0, &voters, SumUpParams { rho: 64 });
        assert!(
            out.acceptance() > 0.8,
            "expander should collect most honest votes, got {}",
            out.acceptance()
        );
    }

    #[test]
    fn votes_capped_by_rho_scale() {
        let g = barabasi_albert(300, 4, &mut StdRng::seed_from_u64(1));
        let voters: Vec<NodeId> = (1..200).collect();
        let small = collect_votes(&g, 0, &voters, SumUpParams { rho: 8 });
        let large = collect_votes(&g, 0, &voters, SumUpParams { rho: 256 });
        assert!(
            large.accepted > small.accepted,
            "more tickets must admit more votes ({} vs {})",
            small.accepted,
            large.accepted
        );
    }

    #[test]
    fn sybil_votes_bounded_by_attack_capacity() {
        let honest = barabasi_albert(300, 4, &mut StdRng::seed_from_u64(2));
        let mut rng = StdRng::seed_from_u64(3);
        let attacked = attach_sybil_region(
            &honest,
            AttackParams {
                sybil_count: 200,
                attack_edges: 5,
                topology: SybilTopology::Random { avg_degree: 5.0 },
            },
            &mut rng,
        );
        let out = sybil_votes(&attacked, 0, SumUpParams { rho: 64 });
        // each attack edge carries at most its (ticket+1) capacity;
        // with 5 edges far from the collector that is ≈ 5–15 votes,
        // never the 200 sybil identities
        assert!(
            out.accepted < 40,
            "sybil votes must be capped by attack edges, got {}",
            out.accepted
        );
        assert_eq!(out.attempted, 200);
    }

    #[test]
    fn slow_graph_drops_remote_honest_votes() {
        // the mixing-time connection: honest voters in remote
        // communities fall outside the ticket envelope
        let slow = SocialParams {
            nodes: 400,
            avg_degree: 8.0,
            community_size: 25,
            inter_fraction: 0.01,
            gamma: 2.6,
        }
        .generate(&mut StdRng::seed_from_u64(4));
        let fast = barabasi_albert(400, 4, &mut StdRng::seed_from_u64(4));
        let voters: Vec<NodeId> = (200..360).collect();
        let params = SumUpParams { rho: 64 };
        let af = collect_votes(&fast, 0, &voters, params).acceptance();
        let asl = collect_votes(&slow, 0, &voters, params).acceptance();
        assert!(
            asl < af,
            "community structure should drop votes: fast {af} vs slow {asl}"
        );
    }

    #[test]
    fn collector_vote_ignored() {
        let g = barabasi_albert(50, 3, &mut StdRng::seed_from_u64(5));
        let out = collect_votes(&g, 0, &[0, 1, 2], SumUpParams::default());
        assert_eq!(out.attempted, 2);
    }
}
