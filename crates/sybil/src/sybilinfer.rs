//! SybilInfer (Danezis & Mittal, NDSS 2009).
//!
//! The third fast-mixing-based defense the paper's related work
//! analyzes: instead of a per-suspect protocol, SybilInfer infers the
//! honest *set* from random-walk traces. The generative model: if `X`
//! is the honest region and the graph restricted to `X` is fast
//! mixing, a short walk starting in `X` ends at a node sampled
//! (nearly) from `X`'s degree-stationary distribution — so walks that
//! *leave* a candidate `X` are evidence against it.
//!
//! This implementation follows the paper's structure with its
//! standard simplification:
//!
//! - **Traces** `T`: `walks_per_node` random walks of length
//!   `O(log n)` from every node, recorded as (start, end) pairs.
//! - **Likelihood** of a candidate honest set `X`:
//!   walks starting in `X` end in `X` with probability
//!   `Π_XX = (1 − E_X)` spread degree-proportionally inside `X`, and
//!   escape with probability `E_X` spread uniformly outside — where
//!   `E_X` is estimated from the trace itself (profile likelihood)
//!   rather than integrated over, which is the approximation the
//!   original paper also makes in its implementation.
//! - **Sampler**: Metropolis–Hastings over subsets (single-node
//!   add/remove proposals) yields per-node marginal honest
//!   probabilities.
//!
//! The connection to the host paper: SybilInfer's likelihood is
//! *calibrated on the fast-mixing assumption*. On slow-mixing honest
//! graphs, honest cross-community walks look like escapes, so honest
//! nodes in small communities get misclassified — exactly the
//! community-sensitivity that Viswanath et al. observed and the IMC
//! paper explains via the mixing time. The tests exercise both sides.

use crate::route::DirectedEdge;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socmix_graph::{Graph, NodeId};
use socmix_markov::walk::random_walk;

/// SybilInfer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SybilInferParams {
    /// Walks sampled per node for the trace.
    pub walks_per_node: usize,
    /// Walk length (the protocol uses O(log n); pass the concrete
    /// value).
    pub walk_length: usize,
    /// Metropolis–Hastings iterations.
    pub mh_iterations: usize,
    /// Samples retained for the marginals (taken evenly from the
    /// second half of the chain).
    pub samples: usize,
    /// Prior probability that any given node is honest (Bernoulli
    /// membership prior; the protocol assumes honest nodes are the
    /// majority). 0.5 = flat prior.
    pub prior_honest: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SybilInferParams {
    fn default() -> Self {
        SybilInferParams {
            walks_per_node: 5,
            walk_length: 10,
            mh_iterations: 20_000,
            samples: 100,
            prior_honest: 0.7,
            seed: 0,
        }
    }
}

/// A random-walk trace: (start, end) pairs.
#[derive(Debug, Clone)]
pub struct Trace {
    pub pairs: Vec<DirectedEdge>,
}

impl Trace {
    /// Samples the trace: `walks_per_node` walks of `walk_length`
    /// from every node.
    pub fn sample(g: &Graph, params: &SybilInferParams) -> Trace {
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x7ace);
        let mut pairs = Vec::with_capacity(g.num_nodes() * params.walks_per_node);
        for v in g.nodes() {
            for _ in 0..params.walks_per_node {
                let w = random_walk(g, v, params.walk_length, &mut rng);
                pairs.push((v, w.end()));
            }
        }
        Trace { pairs }
    }
}

/// Result: per-node marginal probability of being honest.
#[derive(Debug, Clone)]
pub struct SybilInferResult {
    /// `p_honest[v]` ∈ [0, 1].
    pub p_honest: Vec<f64>,
    /// Acceptance rate of the MH chain (diagnostic).
    pub acceptance_rate: f64,
}

impl SybilInferResult {
    /// Nodes classified honest at the given threshold.
    pub fn honest_set(&self, threshold: f64) -> Vec<NodeId> {
        self.p_honest
            .iter()
            .enumerate()
            .filter(|(_, &p)| p >= threshold)
            .map(|(v, _)| v as NodeId)
            .collect()
    }
}

/// Runs SybilInfer from the perspective of `verifier` (always held in
/// the honest set — the protocol's trust anchor).
pub fn sybilinfer(g: &Graph, verifier: NodeId, params: &SybilInferParams) -> SybilInferResult {
    let n = g.num_nodes();
    assert!(n >= 2 && g.num_edges() > 0);
    assert!((verifier as usize) < n);
    let trace = Trace::sample(g, params);

    // Precompute per-node walk start counts and end-in/out tallies
    // against the current X incrementally.
    // walks_from[v] = indices into trace.pairs starting at v
    let mut walks_from: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut walks_to: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, &(s, e)) in trace.pairs.iter().enumerate() {
        walks_from[s as usize].push(i as u32);
        walks_to[e as usize].push(i as u32);
    }

    // State: membership + sufficient statistics of the likelihood:
    //   k_in        = walks with start∈X and end∈X
    //   k_out       = walks with start∈X and end∉X
    //   sum_logdeg  = Σ ln deg(end) over the k_in walks
    //   vol_x       = total degree of X, size_x = |X|
    let log_deg: Vec<f64> = (0..n)
        .map(|v| (g.degree(v as NodeId) as f64).ln())
        .collect();
    let mut in_x = vec![true; n]; // start from "everyone honest"
    let mut vol_x: u64 = (0..n).map(|v| g.degree(v as NodeId) as u64).sum();
    let mut size_x = n;
    let total_walks = trace.pairs.len() as u64;
    let (mut k_in, mut k_out) = (total_walks, 0u64);
    let mut sum_logdeg: f64 = trace.pairs.iter().map(|&(_, e)| log_deg[e as usize]).sum();

    // Log-likelihood of the whole trace under hypothesis X:
    //   s∈X, e∈X : ln(1−E) + ln deg(e) − ln vol_X  (degree-stationary
    //              endpoints inside a fast-mixing honest region)
    //   s∈X, e∉X : ln E − ln(n−|X|)                (escape, spread
    //              uniformly over the outside)
    //   s∉X      : −ln n                           (adversarial walks
    //              modeled as uniform noise)
    // with the escape rate E profiled from the counts. Every walk
    // contributes a term, so shrinking X has a real price.
    let ln_n = (n as f64).ln();
    assert!(
        (0.0..1.0).contains(&params.prior_honest) && params.prior_honest > 0.0,
        "prior_honest must be in (0, 1)"
    );
    let prior_odds = (params.prior_honest / (1.0 - params.prior_honest)).ln();
    let loglik = |k_in: u64, k_out: u64, sum_logdeg: f64, vol_x: u64, size_x: usize| -> f64 {
        let started = k_in + k_out;
        let mut ll = ((total_walks - started) as f64) * (-ln_n) + size_x as f64 * prior_odds;
        if started == 0 {
            return ll;
        }
        let e_hat = (k_out as f64 / started as f64).clamp(1e-9, 1.0 - 1e-9);
        ll += k_in as f64 * ((1.0 - e_hat).ln() - (vol_x.max(1) as f64).ln()) + sum_logdeg;
        ll += k_out as f64 * (e_hat.ln() - ((n - size_x).max(1) as f64).ln());
        ll
    };

    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x1f3a);
    let mut current_ll = loglik(k_in, k_out, sum_logdeg, vol_x, size_x);
    let mut accepted = 0usize;
    let mut honest_tally = vec![0u32; n];
    let mut tallies_taken = 0u32;
    let sample_every = (params.mh_iterations / 2 / params.samples.max(1)).max(1);

    for it in 0..params.mh_iterations {
        // propose flipping one non-verifier node
        let v = rng.random_range(0..n as NodeId);
        if v == verifier {
            continue;
        }
        let vi = v as usize;
        let joining = !in_x[vi];
        // delta counts: walks whose classification changes
        let (mut d_in, mut d_out) = (0i64, 0i64);
        let mut d_sum = 0.0f64;
        for &i in &walks_from[vi] {
            let (_, e) = trace.pairs[i as usize];
            if joining {
                // v's walks enter the start∈X population, classified
                // by the NEW membership (which includes v itself)
                if in_x[e as usize] || e == v {
                    d_in += 1;
                    d_sum += log_deg[e as usize];
                } else {
                    d_out += 1;
                }
            } else {
                // v's walks leave the population; they were classified
                // by the CURRENT membership (which still includes v)
                if in_x[e as usize] {
                    d_in -= 1;
                    d_sum -= log_deg[e as usize];
                } else {
                    d_out -= 1;
                }
            }
        }
        for &i in &walks_to[vi] {
            let (s, e) = trace.pairs[i as usize];
            if s == v || e != v {
                continue; // start flips handled above
            }
            if !in_x[s as usize] {
                continue; // start outside X: walk not in likelihood
            }
            if joining {
                // end was outside, now inside
                d_out -= 1;
                d_in += 1;
                d_sum += log_deg[vi];
            } else {
                d_in -= 1;
                d_out += 1;
                d_sum -= log_deg[vi];
            }
        }
        let new_k_in = (k_in as i64 + d_in) as u64;
        let new_k_out = (k_out as i64 + d_out) as u64;
        let new_vol = if joining {
            vol_x + g.degree(v) as u64
        } else {
            vol_x - g.degree(v) as u64
        };
        let new_size = if joining { size_x + 1 } else { size_x - 1 };
        let new_sum = sum_logdeg + d_sum;
        let new_ll = loglik(new_k_in, new_k_out, new_sum, new_vol, new_size);
        let accept = new_ll >= current_ll || {
            let u: f64 = rng.random();
            u.ln() < new_ll - current_ll
        };
        if accept {
            in_x[vi] = joining;
            k_in = new_k_in;
            k_out = new_k_out;
            sum_logdeg = new_sum;
            vol_x = new_vol;
            size_x = new_size;
            current_ll = new_ll;
            accepted += 1;
        }
        // tally marginals over the second half of the chain
        if it >= params.mh_iterations / 2 && it % sample_every == 0 {
            tallies_taken += 1;
            for (vv, &m) in in_x.iter().enumerate() {
                if m {
                    honest_tally[vv] += 1;
                }
            }
        }
    }
    let p_honest = honest_tally
        .iter()
        .map(|&t| {
            if tallies_taken == 0 {
                0.5
            } else {
                t as f64 / tallies_taken as f64
            }
        })
        .collect();
    SybilInferResult {
        p_honest,
        acceptance_rate: accepted as f64 / params.mh_iterations.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{attach_sybil_region, AttackParams, SybilTopology};
    use socmix_gen::ba::barabasi_albert;

    fn run(g: &Graph, seed: u64) -> SybilInferResult {
        sybilinfer(
            g,
            0,
            &SybilInferParams {
                walks_per_node: 6,
                walk_length: 8,
                mh_iterations: 30_000,
                samples: 120,
                prior_honest: 0.7,
                seed,
            },
        )
    }

    #[test]
    fn separates_sybil_region_on_fast_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let honest = barabasi_albert(150, 4, &mut rng);
        let attacked = attach_sybil_region(
            &honest,
            AttackParams {
                sybil_count: 60,
                attack_edges: 4,
                topology: SybilTopology::Random { avg_degree: 5.0 },
            },
            &mut rng,
        );
        let result = run(&attacked.graph, 2);
        let avg = |r: std::ops::Range<usize>| {
            let len = r.len() as f64;
            r.map(|v| result.p_honest[v]).sum::<f64>() / len
        };
        let honest_avg = avg(0..attacked.honest);
        let sybil_avg = avg(attacked.honest..attacked.graph.num_nodes());
        assert!(
            honest_avg > sybil_avg + 0.2,
            "honest {honest_avg:.3} should clearly beat sybil {sybil_avg:.3}"
        );
    }

    #[test]
    fn verifier_always_honest() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(80, 3, &mut rng);
        let result = run(&g, 4);
        assert!(result.p_honest[0] > 0.99, "the anchor never leaves X");
    }

    #[test]
    fn no_attack_keeps_most_nodes_honest() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = barabasi_albert(120, 4, &mut rng);
        let result = run(&g, 6);
        let honest = result.honest_set(0.5).len();
        assert!(
            honest as f64 > 0.8 * 120.0,
            "attack-free expander should stay mostly honest, kept {honest}"
        );
    }

    #[test]
    fn chain_moves_and_diagnostics_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(60, 3, &mut rng);
        let result = run(&g, 8);
        assert!(result.acceptance_rate > 0.0 && result.acceptance_rate <= 1.0);
        assert!(result.p_honest.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = barabasi_albert(60, 3, &mut rng);
        let a = run(&g, 11);
        let b = run(&g, 11);
        assert_eq!(a.p_honest, b.p_honest);
    }
}
