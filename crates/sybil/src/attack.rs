//! The Sybil attack model: a controlled region attached through a
//! bounded number of attack edges.
//!
//! The whole point of social Sybil defenses is that an attacker can
//! mint unlimited identities but only limited *attack edges* (real
//! trust links to honest users), so the Sybil region hangs off a
//! sparse cut. This module builds that composite graph; the
//! experiments measure how many Sybil identities slip through per
//! attack edge (`≈ w` for SybilLimit) and how often honest walks
//! escape into the region.

use rand::Rng;
use socmix_graph::{Graph, GraphBuilder, NodeId};

/// Topology of the attacker-controlled region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SybilTopology {
    /// A clique — maximizes internal mixing of the Sybil region.
    Clique,
    /// A chain of nodes — the cheapest structure.
    Chain,
    /// An Erdős–Rényi-style region with the given average degree.
    Random { avg_degree: f64 },
}

/// Attack parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackParams {
    /// Number of Sybil identities created.
    pub sybil_count: usize,
    /// Number of attack edges `g` to random honest nodes.
    pub attack_edges: usize,
    /// Shape of the Sybil region.
    pub topology: SybilTopology,
}

/// The composite graph: honest nodes keep their ids `0..honest`,
/// Sybils occupy `honest..honest+sybil_count`.
#[derive(Debug, Clone)]
pub struct AttackedGraph {
    /// The composite (honest ∪ sybil) graph.
    pub graph: Graph,
    /// Number of honest nodes (`=` the original graph's node count).
    pub honest: usize,
}

impl AttackedGraph {
    /// Whether `v` is a Sybil identity.
    pub fn is_sybil(&self, v: NodeId) -> bool {
        (v as usize) >= self.honest
    }

    /// All honest node ids.
    pub fn honest_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.honest as NodeId
    }

    /// All Sybil node ids.
    pub fn sybil_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.honest as NodeId..self.graph.num_nodes() as NodeId
    }
}

/// Attaches a Sybil region to `honest` with the given parameters.
///
/// Attack-edge endpoints are uniform over honest nodes and over Sybil
/// nodes; duplicate picks merge (the builder dedups), so the realized
/// attack-edge count can be slightly below `attack_edges` — real
/// attackers face the same constraint.
///
/// # Panics
///
/// Panics if `sybil_count == 0` or `attack_edges == 0` (use the raw
/// graph for the no-attack case).
pub fn attach_sybil_region<R: Rng + ?Sized>(
    honest: &Graph,
    params: AttackParams,
    rng: &mut R,
) -> AttackedGraph {
    assert!(params.sybil_count > 0, "need at least one sybil");
    assert!(params.attack_edges > 0, "need at least one attack edge");
    assert!(honest.num_nodes() > 0, "honest region empty");
    let h = honest.num_nodes();
    let s = params.sybil_count;
    let mut b = GraphBuilder::with_capacity(honest.num_edges() + s * 4);
    b.grow_to(h + s);
    for (u, v) in honest.edges() {
        b.add_edge(u, v);
    }
    let sybil_id = |i: usize| (h + i) as NodeId;
    match params.topology {
        SybilTopology::Clique => {
            for i in 0..s {
                for j in (i + 1)..s {
                    b.add_edge(sybil_id(i), sybil_id(j));
                }
            }
        }
        SybilTopology::Chain => {
            for i in 1..s {
                b.add_edge(sybil_id(i - 1), sybil_id(i));
            }
        }
        SybilTopology::Random { avg_degree } => {
            assert!(avg_degree > 0.0);
            let target = ((s as f64 * avg_degree) / 2.0).round() as usize;
            let mut added = 0usize;
            let mut attempts = 0usize;
            while added < target && attempts < target * 60 + 100 {
                attempts += 1;
                let i = rng.random_range(0..s);
                let j = rng.random_range(0..s);
                if i != j {
                    b.add_edge(sybil_id(i), sybil_id(j));
                    added += 1;
                }
            }
            // connect stragglers into a chain so the region is one
            // component (an attacker would)
            for i in 1..s {
                b.add_edge(sybil_id(i - 1), sybil_id(i));
            }
        }
    }
    for _ in 0..params.attack_edges {
        let honest_end = rng.random_range(0..h as NodeId);
        let sybil_end = sybil_id(rng.random_range(0..s));
        b.add_edge(honest_end, sybil_end);
    }
    AttackedGraph {
        graph: b.build(),
        honest: h,
    }
}

/// Fraction of `samples` random walks of length `w` from random
/// honest sources that end inside the Sybil region — the *escape
/// probability* the paper's discussion weighs against reaching slow
/// parts of the honest graph.
pub fn escape_probability<R: Rng + ?Sized>(
    attacked: &AttackedGraph,
    w: usize,
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples > 0);
    let mut escaped = 0usize;
    for _ in 0..samples {
        let start = rng.random_range(0..attacked.honest as NodeId);
        let walk = socmix_markov::walk::random_walk(&attacked.graph, start, w, rng);
        if attacked.is_sybil(walk.end()) {
            escaped += 1;
        }
    }
    escaped as f64 / samples as f64
}

/// Exact probability that a walk from `start` *touches* the Sybil
/// region within `w` steps, computed by evolving the exact
/// distribution with the Sybil nodes absorbing (no sampling noise).
///
/// Complements [`escape_probability`], which samples the related but
/// weaker event "the walk is inside the region at step `w`".
pub fn touch_probability_exact(attacked: &AttackedGraph, start: NodeId, w: usize) -> f64 {
    let g = &attacked.graph;
    assert!((start as usize) < attacked.honest, "start must be honest");
    let n = g.num_nodes();
    let mut x = vec![0.0f64; n];
    x[start as usize] = 1.0;
    let mut absorbed = 0.0f64;
    let mut y = vec![0.0f64; n];
    for _ in 0..w {
        y.iter_mut().for_each(|v| *v = 0.0);
        for (v, &mass) in x.iter().enumerate() {
            if mass <= 0.0 {
                continue;
            }
            let share = mass / g.degree(v as NodeId) as f64;
            for &u in g.neighbors(v as NodeId) {
                y[u as usize] += share;
            }
        }
        // absorb everything that stepped into the region
        for yv in &mut y[attacked.honest..] {
            absorbed += *yv;
            *yv = 0.0;
        }
        std::mem::swap(&mut x, &mut y);
        if absorbed >= 1.0 - 1e-12 {
            break;
        }
    }
    absorbed.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socmix_gen::ba::barabasi_albert;
    use socmix_graph::components::is_connected;

    fn honest() -> Graph {
        barabasi_albert(200, 3, &mut StdRng::seed_from_u64(0))
    }

    #[test]
    fn composite_counts() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let a = attach_sybil_region(
            &h,
            AttackParams {
                sybil_count: 30,
                attack_edges: 5,
                topology: SybilTopology::Clique,
            },
            &mut rng,
        );
        assert_eq!(a.graph.num_nodes(), 230);
        assert_eq!(a.honest, 200);
        assert!(a.is_sybil(200));
        assert!(!a.is_sybil(199));
        assert!(is_connected(&a.graph));
    }

    #[test]
    fn clique_topology_edge_count() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(2);
        let a = attach_sybil_region(
            &h,
            AttackParams {
                sybil_count: 10,
                attack_edges: 3,
                topology: SybilTopology::Clique,
            },
            &mut rng,
        );
        let extra = a.graph.num_edges() - h.num_edges();
        // 45 clique edges + ≤3 attack edges
        assert!((46..=48).contains(&extra), "extra={extra}");
    }

    #[test]
    fn chain_topology_is_connected_region() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(3);
        let a = attach_sybil_region(
            &h,
            AttackParams {
                sybil_count: 15,
                attack_edges: 2,
                topology: SybilTopology::Chain,
            },
            &mut rng,
        );
        assert!(is_connected(&a.graph));
    }

    #[test]
    fn random_topology_has_requested_density() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(4);
        let a = attach_sybil_region(
            &h,
            AttackParams {
                sybil_count: 100,
                attack_edges: 4,
                topology: SybilTopology::Random { avg_degree: 6.0 },
            },
            &mut rng,
        );
        let sybil_internal = a
            .graph
            .edges()
            .filter(|&(u, v)| a.is_sybil(u) && a.is_sybil(v))
            .count();
        // chain backstop adds ≤99; ER target is 300
        assert!(sybil_internal >= 250, "too sparse: {sybil_internal}");
    }

    #[test]
    fn escape_probability_grows_with_attack_edges() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(5);
        let few = attach_sybil_region(
            &h,
            AttackParams {
                sybil_count: 50,
                attack_edges: 2,
                topology: SybilTopology::Clique,
            },
            &mut rng,
        );
        let many = attach_sybil_region(
            &h,
            AttackParams {
                sybil_count: 50,
                attack_edges: 60,
                topology: SybilTopology::Clique,
            },
            &mut rng,
        );
        let pf = escape_probability(&few, 10, 3000, &mut rng);
        let pm = escape_probability(&many, 10, 3000, &mut rng);
        assert!(
            pm > pf,
            "more attack edges must leak more walks ({pf} vs {pm})"
        );
    }

    #[test]
    fn escape_probability_bounded() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(6);
        let a = attach_sybil_region(
            &h,
            AttackParams {
                sybil_count: 10,
                attack_edges: 1,
                topology: SybilTopology::Chain,
            },
            &mut rng,
        );
        let p = escape_probability(&a, 5, 1000, &mut rng);
        assert!((0.0..=1.0).contains(&p));
        assert!(p < 0.2, "one attack edge should rarely leak, got {p}");
    }

    #[test]
    fn touch_probability_monotone_in_w() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(7);
        let a = attach_sybil_region(
            &h,
            AttackParams {
                sybil_count: 20,
                attack_edges: 10,
                topology: SybilTopology::Clique,
            },
            &mut rng,
        );
        let p5 = touch_probability_exact(&a, 0, 5);
        let p50 = touch_probability_exact(&a, 0, 50);
        assert!(
            p50 >= p5,
            "touch probability must grow with w ({p5} vs {p50})"
        );
        assert!((0.0..=1.0).contains(&p50));
    }

    #[test]
    fn touch_probability_bounds_sampled_escape() {
        // P(touch within w) >= P(inside at step w)
        let h = honest();
        let mut rng = StdRng::seed_from_u64(8);
        let a = attach_sybil_region(
            &h,
            AttackParams {
                sybil_count: 40,
                attack_edges: 20,
                topology: SybilTopology::Clique,
            },
            &mut rng,
        );
        let w = 12;
        // average exact touch probability over all honest starts
        let avg_touch: f64 = (0..a.honest as NodeId)
            .step_by(10)
            .map(|v| touch_probability_exact(&a, v, w))
            .sum::<f64>()
            / (a.honest as f64 / 10.0);
        let sampled = escape_probability(&a, w, 4000, &mut rng);
        assert!(
            avg_touch + 0.05 >= sampled,
            "touch ({avg_touch}) should dominate end-state escape ({sampled})"
        );
    }

    #[test]
    #[should_panic]
    fn zero_sybils_rejected() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = attach_sybil_region(
            &h,
            AttackParams {
                sybil_count: 0,
                attack_edges: 1,
                topology: SybilTopology::Clique,
            },
            &mut rng,
        );
    }
}
