//! Social-network Sybil defenses: SybilLimit and SybilGuard.
//!
//! The paper's "Performance Implications" experiment (its Figure 8)
//! implements SybilLimit and runs it over social graphs with
//! increasing random-route length `w`, measuring the fraction of
//! honest nodes a verifier admits — showing that the short walk
//! lengths the defense papers assumed (10–15) admit far fewer honest
//! nodes on slow-mixing graphs than claimed. This crate is a faithful
//! implementation of the pieces that experiment needs:
//!
//! - [`route`] — the *random route* primitive both protocols share:
//!   per-instance random permutation routing tables, giving
//!   back-traceable, convergent walks,
//! - [`sybillimit`] — SybilLimit (Yu et al., S&P'08): `r = r₀√m`
//!   instances, tail registration, the intersection condition and the
//!   balance condition,
//! - [`sybilguard`] — SybilGuard (Yu et al., SIGCOMM'06): one
//!   instance, per-edge witness routes, route-intersection
//!   verification,
//! - [`mod@sybilinfer`] — SybilInfer (Danezis & Mittal, NDSS'09): walk
//!   traces + Metropolis–Hastings inference of the honest set, whose
//!   likelihood is calibrated on the fast-mixing assumption the IMC
//!   paper tests,
//! - [`attack`] — the attack model: a Sybil region of configurable
//!   topology attached through `g` attack edges,
//! - [`experiment`] — the admission-rate and Sybil-yield experiment
//!   drivers used by the `repro` harness.

pub mod attack;
pub mod experiment;
pub mod ranking;
pub mod route;
pub mod sumup;
pub mod sybilguard;
pub mod sybilinfer;
pub mod sybillimit;

pub use attack::{attach_sybil_region, AttackParams, AttackedGraph, SybilTopology};
pub use ranking::{evaluate_ranking, pagerank_ranking, RankingEvaluation};
pub use route::{DirectedEdge, RouteInstance};
pub use sumup::{collect_votes, SumUpParams, VoteOutcome};
pub use sybilguard::SybilGuard;
pub use sybilinfer::{sybilinfer, SybilInferParams, SybilInferResult};
pub use sybillimit::{benchmark_walk_length, SybilLimit, SybilLimitParams, WalkLengthEstimate};
