//! Experiment drivers for the paper's Figure 8 and the discussion's
//! attack analysis.

use crate::attack::AttackedGraph;
use crate::sybillimit::{SybilLimit, SybilLimitParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socmix_graph::{sample, Graph, NodeId};

/// One point of the admission-rate curve (Figure 8).
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionPoint {
    /// Random-route length.
    pub w: usize,
    /// Route count `r` used at this point.
    pub r: usize,
    /// Fraction of honest suspects accepted (intersection ∧ balance).
    pub accepted: f64,
    /// Fraction passing the intersection condition alone.
    pub intersected: f64,
}

/// Sweeps the walk length and measures the honest admission rate —
/// the paper's Figure 8 ("we increase t until the number of accepted
/// nodes by a trusted node reaches almost all honest nodes"; no
/// attacker, since SybilLimit's sybil bound is `g·w` regardless).
///
/// `suspect_count` honest suspects and the verifier are sampled
/// deterministically from `seed`.
pub fn admission_experiment(
    g: &Graph,
    r0: f64,
    walk_lengths: &[usize],
    suspect_count: usize,
    seed: u64,
) -> Vec<AdmissionPoint> {
    assert!(g.num_nodes() >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let verifier = sample::random_node(g, &mut rng);
    let suspects: Vec<NodeId> = sample::random_nodes(g, suspect_count.min(g.num_nodes()), &mut rng);
    walk_lengths
        .iter()
        .map(|&w| {
            let sl = SybilLimit::new(
                g,
                SybilLimitParams {
                    r0,
                    w,
                    seed,
                    ..Default::default()
                },
            );
            let v = sl.verify_all(verifier, &suspects);
            AdmissionPoint {
                w,
                r: v.r,
                accepted: v.accepted_fraction(),
                intersected: v.intersection_fraction(),
            }
        })
        .collect()
}

/// One point of the Sybil-yield curve: how many Sybil identities a
/// verifier accepts at walk length `w`, against the `g·w` theoretical
/// bound.
#[derive(Debug, Clone, PartialEq)]
pub struct SybilYieldPoint {
    pub w: usize,
    /// Sybil identities accepted.
    pub accepted_sybils: usize,
    /// Sybil suspects presented.
    pub presented_sybils: usize,
    /// Attack edges in the composite graph (realized).
    pub attack_edges: usize,
    /// Accepted Sybils per attack edge — compare with the `w` bound.
    pub per_attack_edge: f64,
}

/// Measures accepted Sybil identities as a function of `w` on an
/// attacked graph. All Sybil nodes are presented as suspects to an
/// honest verifier.
pub fn sybil_yield_experiment(
    attacked: &AttackedGraph,
    r0: f64,
    walk_lengths: &[usize],
    seed: u64,
) -> Vec<SybilYieldPoint> {
    let g = &attacked.graph;
    let mut rng = StdRng::seed_from_u64(seed);
    let verifier = rng.random_range(0..attacked.honest as NodeId);
    let sybils: Vec<NodeId> = attacked.sybil_nodes().collect();
    let attack_edges = g
        .edges()
        .filter(|&(u, v)| attacked.is_sybil(u) != attacked.is_sybil(v))
        .count();
    walk_lengths
        .iter()
        .map(|&w| {
            let sl = SybilLimit::new(
                g,
                SybilLimitParams {
                    r0,
                    w,
                    seed,
                    ..Default::default()
                },
            );
            let v = sl.verify_all(verifier, &sybils);
            let accepted = v.accepted.iter().filter(|&&a| a).count();
            SybilYieldPoint {
                w,
                accepted_sybils: accepted,
                presented_sybils: sybils.len(),
                attack_edges,
                per_attack_edge: accepted as f64 / attack_edges.max(1) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{attach_sybil_region, AttackParams, SybilTopology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socmix_gen::ba::barabasi_albert;

    fn honest() -> Graph {
        barabasi_albert(250, 4, &mut StdRng::seed_from_u64(3))
    }

    #[test]
    fn admission_rises_with_walk_length() {
        let g = honest();
        let pts = admission_experiment(&g, 3.0, &[1, 4, 12], 80, 7);
        assert_eq!(pts.len(), 3);
        assert!(
            pts[2].accepted >= pts[0].accepted,
            "admission should not fall with longer walks: {pts:?}"
        );
        assert!(
            pts[2].accepted > 0.8,
            "long walks should admit most: {pts:?}"
        );
    }

    #[test]
    fn intersection_at_least_accepted() {
        let g = honest();
        for p in admission_experiment(&g, 2.0, &[2, 8], 60, 1) {
            assert!(p.intersected >= p.accepted);
        }
    }

    #[test]
    fn experiment_is_deterministic() {
        let g = honest();
        let a = admission_experiment(&g, 2.0, &[3, 6], 40, 5);
        let b = admission_experiment(&g, 2.0, &[3, 6], 40, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn sybil_yield_bounded_by_walklength_scaling() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(9);
        let attacked = attach_sybil_region(
            &h,
            AttackParams {
                sybil_count: 120,
                attack_edges: 6,
                topology: SybilTopology::Random { avg_degree: 5.0 },
            },
            &mut rng,
        );
        let pts = sybil_yield_experiment(&attacked, 3.0, &[2, 10], 11);
        for p in &pts {
            // SybilLimit theorem: accepted sybils per attack edge = O(w).
            // generous constant: 3w + ln r slack
            assert!(
                p.per_attack_edge <= 3.0 * p.w as f64 + 10.0,
                "yield {} per edge exceeds O(w={}) bound",
                p.per_attack_edge,
                p.w
            );
        }
        assert_eq!(pts[0].presented_sybils, 120);
    }

    #[test]
    fn more_attack_edges_more_sybils_accepted() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(13);
        let mk = |edges: usize, rng: &mut StdRng| {
            attach_sybil_region(
                &h,
                AttackParams {
                    sybil_count: 100,
                    attack_edges: edges,
                    topology: SybilTopology::Random { avg_degree: 5.0 },
                },
                rng,
            )
        };
        let few = mk(2, &mut rng);
        let many = mk(40, &mut rng);
        let yf = &sybil_yield_experiment(&few, 3.0, &[8], 1)[0];
        let ym = &sybil_yield_experiment(&many, 3.0, &[8], 1)[0];
        assert!(
            ym.accepted_sybils >= yf.accepted_sybils,
            "more attack edges should admit at least as many sybils ({} vs {})",
            yf.accepted_sybils,
            ym.accepted_sybils
        );
    }
}
