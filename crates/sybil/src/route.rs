//! Random routes: the convergent, back-traceable walk primitive.
//!
//! A random-route *instance* fixes, for every node, a uniformly
//! random permutation `σ_v` of its incident edge slots. A route that
//! enters `v` along its `i`-th incident edge always leaves along the
//! `σ_v(i)`-th. Two properties follow (and are tested):
//!
//! - **Convergence**: routes that traverse the same directed edge
//!   merge forever after (the table is deterministic per instance).
//! - **Back-traceability**: `σ_v` being a bijection makes the
//!   one-step map on *directed edges* a permutation, so a tail edge
//!   identifies a unique length-`w` route — the anti-forgery property
//!   SybilLimit's registration relies on.
//!
//! Instances are generated deterministically from `(seed, instance
//! id)` so experiments are reproducible and tables need not be
//! stored: rebuilding one instance is O(m).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use socmix_graph::{Graph, NodeId};

/// A directed edge `(from, to)` — the unit of tail registration.
pub type DirectedEdge = (NodeId, NodeId);

/// One random-route instance: routing tables for every node.
pub struct RouteInstance {
    /// Flattened per-node permutations, indexed like the graph's CSR
    /// targets: `perm[offsets[v] + in_slot] = out_slot`.
    perm: Vec<u32>,
    /// First out-slot used when a route *starts* at a node (fixed per
    /// instance, as each node has exactly one route per instance).
    first: Vec<u32>,
}

impl RouteInstance {
    /// Builds instance `instance` of the routing tables for `g`,
    /// deterministically from `seed`.
    pub fn new(g: &Graph, seed: u64, instance: u32) -> Self {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (instance as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
        let offsets = g.offsets();
        let mut perm = vec![0u32; g.total_degree()];
        let mut first = vec![0u32; g.num_nodes()];
        for v in 0..g.num_nodes() {
            let d = offsets[v + 1] - offsets[v];
            if d == 0 {
                continue;
            }
            let slice = &mut perm[offsets[v]..offsets[v + 1]];
            for (i, s) in slice.iter_mut().enumerate() {
                *s = i as u32;
            }
            slice.shuffle(&mut rng);
            first[v] = rng.random_range(0..d as u32);
        }
        RouteInstance { perm, first }
    }

    /// The out-slot for a route entering `v` via in-slot `i`.
    #[inline]
    fn out_slot(&self, g: &Graph, v: NodeId, in_slot: u32) -> u32 {
        self.perm[g.offsets()[v as usize] + in_slot as usize]
    }

    /// Advances one step from the directed edge `(from, to)`:
    /// the route leaves `to` along `σ_to(slot of from)`.
    pub fn step(&self, g: &Graph, edge: DirectedEdge) -> DirectedEdge {
        let (from, to) = edge;
        let in_slot = g
            .neighbors(to)
            .binary_search(&from)
            .expect("step requires a real edge") as u32;
        let out = self.out_slot(g, to, in_slot);
        (to, g.neighbors(to)[out as usize])
    }

    /// The full route of `w ≥ 1` steps starting at `start`, as the
    /// node sequence (length `w + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `start` is isolated or `w == 0`.
    pub fn route(&self, g: &Graph, start: NodeId, w: usize) -> Vec<NodeId> {
        assert!(w >= 1, "route needs at least one step");
        let d = g.degree(start);
        assert!(d > 0, "route cannot start at isolated node {start}");
        let mut nodes = Vec::with_capacity(w + 1);
        nodes.push(start);
        let mut edge = (
            start,
            g.neighbors(start)[self.first[start as usize] as usize],
        );
        nodes.push(edge.1);
        for _ in 1..w {
            edge = self.step(g, edge);
            nodes.push(edge.1);
        }
        nodes
    }

    /// A route that starts by leaving `start` along its `slot`-th
    /// incident edge (SybilGuard sends one route per edge).
    pub fn route_from_slot(&self, g: &Graph, start: NodeId, slot: usize, w: usize) -> Vec<NodeId> {
        assert!(w >= 1);
        assert!(slot < g.degree(start), "slot out of range");
        let mut nodes = Vec::with_capacity(w + 1);
        nodes.push(start);
        let mut edge = (start, g.neighbors(start)[slot]);
        nodes.push(edge.1);
        for _ in 1..w {
            edge = self.step(g, edge);
            nodes.push(edge.1);
        }
        nodes
    }

    /// The tail (last directed edge) of the length-`w` route from
    /// `start` — the edge where SybilLimit registers/verifies.
    pub fn tail(&self, g: &Graph, start: NodeId, w: usize) -> DirectedEdge {
        let nodes = self.route(g, start, w);
        (nodes[nodes.len() - 2], nodes[nodes.len() - 1])
    }

    /// Tails for every node in `starts` (shared instance, one pass).
    pub fn tails(&self, g: &Graph, starts: &[NodeId], w: usize) -> Vec<DirectedEdge> {
        starts.iter().map(|&s| self.tail(g, s, w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socmix_gen::fixtures;
    use std::collections::HashSet;

    #[test]
    fn routes_follow_edges() {
        let g = fixtures::petersen();
        let inst = RouteInstance::new(&g, 0, 0);
        let r = inst.route(&g, 0, 20);
        assert_eq!(r.len(), 21);
        for pair in r.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn routes_are_deterministic() {
        let g = fixtures::petersen();
        let inst = RouteInstance::new(&g, 7, 3);
        assert_eq!(inst.route(&g, 2, 15), inst.route(&g, 2, 15));
        let inst2 = RouteInstance::new(&g, 7, 3);
        assert_eq!(inst.route(&g, 2, 15), inst2.route(&g, 2, 15));
    }

    #[test]
    fn different_instances_differ() {
        let g = fixtures::grid(6, 6);
        let a = RouteInstance::new(&g, 7, 0);
        let b = RouteInstance::new(&g, 7, 1);
        let routes_a: Vec<_> = (0..36).map(|v| a.route(&g, v, 10)).collect();
        let routes_b: Vec<_> = (0..36).map(|v| b.route(&g, v, 10)).collect();
        assert_ne!(routes_a, routes_b);
    }

    #[test]
    fn step_is_a_permutation_on_directed_edges() {
        // back-traceability: the one-step map must be a bijection
        let g = fixtures::petersen();
        let inst = RouteInstance::new(&g, 1, 0);
        let mut images = HashSet::new();
        let mut count = 0usize;
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                let next = inst.step(&g, (u, v));
                assert!(g.has_edge(next.0, next.1));
                assert!(images.insert(next), "two edges map to {next:?}");
                count += 1;
            }
        }
        assert_eq!(count, g.total_degree());
        assert_eq!(images.len(), g.total_degree());
    }

    #[test]
    fn routes_converge_after_shared_edge() {
        // if two routes traverse the same directed edge they coincide
        // afterward
        let g = fixtures::grid(5, 5);
        let inst = RouteInstance::new(&g, 3, 0);
        let e0: DirectedEdge = (0, 1);
        let a = {
            let mut e = e0;
            let mut seq = vec![e];
            for _ in 0..10 {
                e = inst.step(&g, e);
                seq.push(e);
            }
            seq
        };
        let b = {
            let mut e = e0;
            let mut seq = vec![e];
            for _ in 0..10 {
                e = inst.step(&g, e);
                seq.push(e);
            }
            seq
        };
        assert_eq!(a, b);
    }

    #[test]
    fn tail_matches_route_end() {
        let g = fixtures::petersen();
        let inst = RouteInstance::new(&g, 5, 2);
        let r = inst.route(&g, 4, 12);
        let t = inst.tail(&g, 4, 12);
        assert_eq!(t, (r[11], r[12]));
    }

    #[test]
    fn route_from_slot_starts_along_that_edge() {
        let g = fixtures::petersen();
        let inst = RouteInstance::new(&g, 2, 0);
        for slot in 0..3 {
            let r = inst.route_from_slot(&g, 0, slot, 5);
            assert_eq!(r[1], g.neighbors(0)[slot]);
        }
    }

    #[test]
    fn tails_batch_matches_single() {
        let g = fixtures::grid(4, 4);
        let inst = RouteInstance::new(&g, 9, 1);
        let starts: Vec<NodeId> = (0..16).collect();
        let batch = inst.tails(&g, &starts, 8);
        for (k, &s) in starts.iter().enumerate() {
            assert_eq!(batch[k], inst.tail(&g, s, 8));
        }
    }

    #[test]
    #[should_panic]
    fn zero_length_route_rejected() {
        let g = fixtures::petersen();
        let inst = RouteInstance::new(&g, 0, 0);
        let _ = inst.route(&g, 0, 0);
    }
}
