//! SybilGuard (Yu, Kaminsky, Gibbons, Flaxman — SIGCOMM 2006).
//!
//! The predecessor protocol: a single random-route instance in which
//! every node sends one *witness route* of length `w` along **each**
//! of its incident edges. A verifier accepts a suspect when enough of
//! the verifier's routes intersect (share a node with) at least one
//! of the suspect's routes. SybilGuard needs `w = Θ(√n log n)` —
//! much longer than SybilLimit's — and is included here because the
//! IMC'10 paper analyses its low-degree-trimming methodology
//! (Figure 6) and cites its experiments as indirect mixing evidence.

use crate::route::RouteInstance;
use socmix_graph::{Graph, NodeId};
use std::collections::HashSet;

/// A configured SybilGuard protocol (one route instance).
pub struct SybilGuard<'g> {
    graph: &'g Graph,
    w: usize,
    instance: RouteInstance,
    /// Fraction of verifier routes that must intersect (the paper
    /// accepts on a majority; we default to 0.5).
    threshold: f64,
}

impl<'g> SybilGuard<'g> {
    /// Sets up the protocol with route length `w`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges or `w == 0`.
    pub fn new(graph: &'g Graph, w: usize, seed: u64) -> Self {
        assert!(graph.num_edges() > 0 && w >= 1);
        SybilGuard {
            graph,
            w,
            instance: RouteInstance::new(graph, seed, 0),
            threshold: 0.5,
        }
    }

    /// Overrides the majority threshold (fraction of verifier routes
    /// that must intersect).
    pub fn threshold(mut self, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold));
        self.threshold = threshold;
        self
    }

    /// The witness routes of `v`: one per incident edge, each a node
    /// sequence of length `w + 1`.
    pub fn routes_of(&self, v: NodeId) -> Vec<Vec<NodeId>> {
        (0..self.graph.degree(v))
            .map(|slot| self.instance.route_from_slot(self.graph, v, slot, self.w))
            .collect()
    }

    /// Whether `verifier` accepts `suspect`: at least `threshold` of
    /// the verifier's routes must share a node with some suspect
    /// route.
    pub fn verify(&self, verifier: NodeId, suspect: NodeId) -> bool {
        let suspect_nodes: HashSet<NodeId> =
            self.routes_of(suspect).into_iter().flatten().collect();
        let v_routes = self.routes_of(verifier);
        if v_routes.is_empty() {
            return false;
        }
        let hits = v_routes
            .iter()
            .filter(|r| r.iter().any(|n| suspect_nodes.contains(n)))
            .count();
        hits as f64 >= self.threshold * v_routes.len() as f64
    }

    /// Fraction of `suspects` accepted by `verifier`.
    pub fn admission_fraction(&self, verifier: NodeId, suspects: &[NodeId]) -> f64 {
        if suspects.is_empty() {
            return 0.0;
        }
        let hits = suspects
            .iter()
            .filter(|&&s| self.verify(verifier, s))
            .count();
        hits as f64 / suspects.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socmix_gen::ba::barabasi_albert;
    use socmix_gen::fixtures;

    #[test]
    fn routes_one_per_edge() {
        let g = fixtures::petersen();
        let sg = SybilGuard::new(&g, 6, 0);
        let routes = sg.routes_of(0);
        assert_eq!(routes.len(), 3);
        for (slot, r) in routes.iter().enumerate() {
            assert_eq!(r.len(), 7);
            assert_eq!(r[1], g.neighbors(0)[slot]);
        }
    }

    #[test]
    fn self_verification_succeeds() {
        let g = fixtures::petersen();
        let sg = SybilGuard::new(&g, 5, 0);
        assert!(sg.verify(3, 3));
    }

    #[test]
    fn long_routes_admit_on_small_graph() {
        let g = barabasi_albert(150, 3, &mut StdRng::seed_from_u64(0));
        // √n·log n ≈ 12·5 ≈ 60; generous length admits nearly all
        let sg = SybilGuard::new(&g, 60, 1);
        let suspects: Vec<NodeId> = (0..50).collect();
        let f = sg.admission_fraction(100, &suspects);
        assert!(f > 0.9, "expected high admission with long routes, got {f}");
    }

    #[test]
    fn short_routes_admit_less() {
        let g = barabasi_albert(150, 3, &mut StdRng::seed_from_u64(0));
        let long = SybilGuard::new(&g, 60, 1);
        let short = SybilGuard::new(&g, 2, 1);
        let suspects: Vec<NodeId> = (0..50).collect();
        let fl = long.admission_fraction(100, &suspects);
        let fs = short.admission_fraction(100, &suspects);
        assert!(fs < fl, "short {fs} should admit less than long {fl}");
    }

    #[test]
    fn threshold_one_is_stricter() {
        let g = barabasi_albert(150, 3, &mut StdRng::seed_from_u64(2));
        let suspects: Vec<NodeId> = (0..50).collect();
        let majority = SybilGuard::new(&g, 10, 3).admission_fraction(100, &suspects);
        let all = SybilGuard::new(&g, 10, 3)
            .threshold(1.0)
            .admission_fraction(100, &suspects);
        assert!(all <= majority);
    }

    #[test]
    #[should_panic]
    fn zero_w_rejected() {
        let g = fixtures::petersen();
        let _ = SybilGuard::new(&g, 0, 0);
    }
}
