//! Protocol-level property tests for the random-route machinery.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use socmix_graph::{components, GraphBuilder, NodeId};
use socmix_sybil::RouteInstance;

fn connected_graph() -> impl Strategy<Value = socmix_graph::Graph> {
    (
        3usize..30,
        proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..40),
    )
        .prop_map(|(n, extra)| {
            let mut b = GraphBuilder::new();
            for v in 1..n as NodeId {
                b.add_edge(v - 1, v); // path backbone keeps it connected
            }
            for (x, y) in extra {
                let u = (x % n as u64) as NodeId;
                let v = (y % n as u64) as NodeId;
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The one-step route map is a permutation of directed edges for
    /// every graph and every instance — the back-traceability that
    /// SybilLimit's security argument needs.
    #[test]
    fn route_step_is_bijective(g in connected_graph(), seed in 0u64..1000, inst in 0u32..8) {
        prop_assert!(components::is_connected(&g));
        let instance = RouteInstance::new(&g, seed, inst);
        let mut images = std::collections::HashSet::new();
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                let next = instance.step(&g, (u, v));
                prop_assert!(g.has_edge(next.0, next.1));
                prop_assert!(images.insert(next), "collision at {next:?}");
            }
        }
        prop_assert_eq!(images.len(), g.total_degree());
    }

    /// Routes are reproducible and consist of real edges.
    #[test]
    fn routes_deterministic_and_valid(g in connected_graph(), seed in 0u64..1000, w in 1usize..20) {
        let a = RouteInstance::new(&g, seed, 0);
        let b = RouteInstance::new(&g, seed, 0);
        for start in g.nodes() {
            let ra = a.route(&g, start, w);
            let rb = b.route(&g, start, w);
            prop_assert_eq!(&ra, &rb);
            prop_assert_eq!(ra.len(), w + 1);
            for pair in ra.windows(2) {
                prop_assert!(g.has_edge(pair[0], pair[1]));
            }
        }
    }

    /// Tail distribution sanity: with enough instances, tails hit
    /// many distinct directed edges (no degenerate collapse).
    #[test]
    fn tails_spread_over_edges(g in connected_graph(), seed in 0u64..100) {
        let w = 6;
        let mut tails = std::collections::HashSet::new();
        for inst in 0..8u32 {
            let instance = RouteInstance::new(&g, seed, inst);
            for start in g.nodes() {
                tails.insert((inst, instance.tail(&g, start, w)));
            }
        }
        // at least as many distinct (instance, tail) pairs as nodes
        prop_assert!(tails.len() >= g.num_nodes());
    }

    /// Escape probability is a probability and grows with the number
    /// of attack edges.
    #[test]
    fn escape_probability_is_probability(seed in 0u64..50) {
        use socmix_sybil::{attach_sybil_region, AttackParams, SybilTopology};
        let mut rng = StdRng::seed_from_u64(seed);
        let honest = socmix_gen::ba::barabasi_albert(80, 3, &mut rng);
        let attacked = attach_sybil_region(
            &honest,
            AttackParams {
                sybil_count: 10,
                attack_edges: 4,
                topology: SybilTopology::Clique,
            },
            &mut rng,
        );
        let p = socmix_sybil::attack::escape_probability(&attacked, 8, 500, &mut rng);
        prop_assert!((0.0..=1.0).contains(&p));
        let exact = socmix_sybil::attack::touch_probability_exact(&attacked, 0, 8);
        prop_assert!((0.0..=1.0).contains(&exact));
    }
}
