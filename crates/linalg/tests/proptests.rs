//! Property tests for the eigensolver stack: random matrices, random
//! graphs, closed-form spectra.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use socmix_graph::{GraphBuilder, NodeId};
use socmix_linalg::dense::{jacobi_eigen, slem_dense, DenseMatrix};
use socmix_linalg::tridiag::{tridiag_eigen, tridiag_eigenvalues};
use socmix_linalg::{lanczos_extreme, DeflatedOp, LanczosOptions, LinearOp, SymmetricWalkOp};

fn symmetric_matrix(max_n: usize) -> impl Strategy<Value = DenseMatrix> {
    (2usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(-1.0f64..1.0, n * (n + 1) / 2).prop_map(move |vals| {
            let mut m = DenseMatrix::zeros(n);
            let mut k = 0;
            for i in 0..n {
                for j in i..n {
                    m.set(i, j, vals[k]);
                    m.set(j, i, vals[k]);
                    k += 1;
                }
            }
            m
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn jacobi_reconstructs_matrix(m in symmetric_matrix(8)) {
        // Σ λ_k v_k v_kᵀ == M
        let n = m.dim();
        let (vals, vecs) = jacobi_eigen(&m);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += vals[k] * vecs[k][i] * vecs[k][j];
                }
                prop_assert!((acc - m.get(i, j)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn jacobi_values_sorted_descending(m in symmetric_matrix(10)) {
        let (vals, _) = jacobi_eigen(&m);
        prop_assert!(vals.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn tridiag_matches_jacobi(
        d in proptest::collection::vec(-2.0f64..2.0, 2..10),
        raw_e in proptest::collection::vec(-2.0f64..2.0, 9)
    ) {
        let n = d.len();
        let e = &raw_e[..n - 1];
        let tv = tridiag_eigenvalues(&d, e);
        let mut m = DenseMatrix::zeros(n);
        for (i, &di) in d.iter().enumerate() {
            m.set(i, i, di);
        }
        for (i, &ei) in e.iter().enumerate() {
            m.set(i, i + 1, ei);
            m.set(i + 1, i, ei);
        }
        let (jv, _) = jacobi_eigen(&m);
        for (a, b) in tv.iter().zip(&jv) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn tridiag_eigenvectors_unit_norm(
        d in proptest::collection::vec(-2.0f64..2.0, 2..8),
        raw_e in proptest::collection::vec(-2.0f64..2.0, 7)
    ) {
        let n = d.len();
        let (_, vecs) = tridiag_eigen(&d, &raw_e[..n - 1]);
        for v in vecs {
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            prop_assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lanczos_slem_matches_dense_on_random_graphs(
        tree_picks in proptest::collection::vec(0u64..u64::MAX, 4..30),
        extra in proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..40)
    ) {
        let n = tree_picks.len() + 1;
        let mut b = GraphBuilder::new();
        for (v, pick) in tree_picks.iter().enumerate() {
            let v = (v + 1) as NodeId;
            b.add_edge((pick % v as u64) as NodeId, v);
        }
        for (x, y) in extra {
            let u = (x % n as u64) as NodeId;
            let v = (y % n as u64) as NodeId;
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let expect = slem_dense(&g);
        let sop = SymmetricWalkOp::new(&g);
        let basis = vec![sop.top_eigenvector()];
        let defl = DeflatedOp::new(sop, &basis);
        let mut rng = StdRng::seed_from_u64(1);
        let r = lanczos_extreme(&defl, LanczosOptions::default(), &mut rng);
        let mu = r.top.max(-r.bottom);
        prop_assert!((mu - expect).abs() < 1e-6, "lanczos {mu} vs dense {expect}");
    }

    #[test]
    fn symmetric_walk_operator_norm_at_most_one(
        tree_picks in proptest::collection::vec(0u64..u64::MAX, 3..20)
    ) {
        // ‖S x‖ ≤ ‖x‖ for the normalized adjacency of any graph
        let n = tree_picks.len() + 1;
        let mut b = GraphBuilder::new();
        for (v, pick) in tree_picks.iter().enumerate() {
            let v = (v + 1) as NodeId;
            b.add_edge((pick % v as u64) as NodeId, v);
        }
        let g = b.build();
        let op = SymmetricWalkOp::new(&g);
        let x: Vec<f64> = (0..n).map(|i| ((i * 37 + 5) % 11) as f64 - 5.0).collect();
        let y = op.apply_vec(&x);
        let nx: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let ny: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(ny <= nx + 1e-9);
    }
}
