//! Cross-shard determinism of the multi-process matvec backend.
//!
//! The distributed contract extends the pool contract one level up:
//! shard count changes wall-clock and process boundaries, never bits.
//! Every test here compares the sharded operators at `k = 1, 2, 4`
//! against a hand-rolled serial reference (independent of the
//! `SOCMIX_SHARDS` environment, so the assertions stay exact when CI
//! re-runs this suite with the knob set) over the fixture catalog.
//!
//! This binary runs **without** the libtest harness: worker processes
//! are fork/execs of the current executable, so `main` must call
//! `socmix_par::shard::worker_check()` before anything else — the
//! default harness cannot do that, which is exactly the spawn-failure
//! path the in-crate unit tests cover instead.

use rand::rngs::StdRng;
use rand::SeedableRng;
use socmix_gen::ba::barabasi_albert;
use socmix_gen::fixtures;
use socmix_graph::{Graph, GraphBuilder};
use socmix_linalg::{
    contiguous_labels, lanczos_extreme, DeflatedOp, DistributedOp, LanczosOptions, LinearOp,
    MultiLinearOp, MultiVec, SymmetricWalkOp, WalkOp,
};
use socmix_par::shard::ShardError;
use socmix_par::Pool;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// The fixture catalog every bitwise test sweeps.
fn catalog() -> Vec<(&'static str, Graph)> {
    let mut with_isolated = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0)]);
    with_isolated.grow_to(6);
    vec![
        ("petersen", fixtures::petersen()),
        ("barbell", fixtures::barbell(6, 0)),
        ("grid", fixtures::grid(8, 5)),
        ("cycle", fixtures::cycle(17)),
        ("tree", fixtures::binary_tree(4)),
        (
            "ba",
            barabasi_albert(300, 3, &mut StdRng::seed_from_u64(42)),
        ),
        ("isolated", with_isolated.build()),
    ]
}

/// A deterministic but unstructured probe vector.
fn probe_vector(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
        .collect()
}

/// Serial scalar reference for `y = xP` (walk) or `y = Sx`
/// (symmetric): the ground truth every backend must hit bit-for-bit,
/// computed without any socmix operator so it cannot itself be
/// rerouted by `SOCMIX_SHARDS`.
fn reference_apply(g: &Graph, x: &[f64], symmetric: bool) -> Vec<f64> {
    let n = g.num_nodes();
    let inv: Vec<f64> = (0..n)
        .map(|v| {
            let d = g.degree(v as u32) as f64;
            if d == 0.0 {
                0.0
            } else if symmetric {
                1.0 / d.sqrt()
            } else {
                1.0 / d
            }
        })
        .collect();
    let z: Vec<f64> = x.iter().zip(&inv).map(|(xi, iv)| xi * iv).collect();
    let offsets = g.offsets();
    let targets = g.raw_targets();
    (0..n)
        .map(|j| {
            let mut acc = 0.0;
            for &i in &targets[offsets[j]..offsets[j + 1]] {
                acc += z[i as usize];
            }
            if symmetric {
                acc * inv[j]
            } else {
                acc
            }
        })
        .collect()
}

fn assert_bitwise(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: row {i} differs ({x} vs {y})"
        );
    }
}

fn dist_op(g: &Graph, shards: usize, symmetric: bool) -> DistributedOp<'_> {
    let labels = contiguous_labels(g.num_nodes(), shards);
    let built = if symmetric {
        DistributedOp::symmetric(g, &labels, shards)
    } else {
        DistributedOp::walk(g, &labels, shards)
    };
    built.unwrap_or_else(|e| panic!("cannot build {shards}-shard backend: {e}"))
}

/// Single-vector applies: local ops and every shard count against the
/// serial reference, across the whole catalog.
fn matvec_bitwise_across_backends() {
    for (name, g) in catalog() {
        let x = probe_vector(g.num_nodes());
        for symmetric in [false, true] {
            let want = reference_apply(&g, &x, symmetric);
            let local = if symmetric {
                SymmetricWalkOp::with_pool(&g, Pool::serial()).apply_vec(&x)
            } else {
                WalkOp::with_pool(&g, Pool::serial()).apply_vec(&x)
            };
            assert_bitwise(&want, &local, &format!("{name} local sym={symmetric}"));
            for shards in SHARD_COUNTS {
                let op = dist_op(&g, shards, symmetric);
                let mut y = vec![0.0; g.num_nodes()];
                op.try_apply(&x, &mut y)
                    .unwrap_or_else(|e| panic!("{name} k={shards}: {e}"));
                assert_bitwise(&want, &y, &format!("{name} k={shards} sym={symmetric}"));
            }
        }
    }
}

/// Batched applies through the `MultiLinearOp` surface.
fn apply_multi_bitwise_across_backends() {
    for (name, g) in catalog() {
        let n = g.num_nodes();
        let width = 4;
        let mut x = MultiVec::zeros(n, width);
        for c in 0..width {
            let col: Vec<f64> = probe_vector(n).iter().map(|v| v * (c + 1) as f64).collect();
            x.set_column(c, &col);
        }
        let want: Vec<Vec<f64>> = (0..width)
            .map(|c| reference_apply(&g, &x.column(c), false))
            .collect();
        for shards in SHARD_COUNTS {
            let op = dist_op(&g, shards, false);
            let mut y = MultiVec::zeros(n, width);
            op.apply_multi(&x, &mut y, width);
            for (c, want_col) in want.iter().enumerate() {
                assert_bitwise(
                    want_col,
                    &y.column(c),
                    &format!("{name} k={shards} multi col {c}"),
                );
            }
        }
    }
}

/// µ through the full Lanczos pipeline: a `DeflatedOp` over the
/// sharded symmetric operator must reproduce the local spectrum
/// bit-for-bit (same seeded start, same operator bits at every step).
fn mu_bitwise_across_backends() {
    for (name, g) in [
        ("petersen", fixtures::petersen()),
        ("barbell", fixtures::barbell(6, 0)),
        (
            "ba",
            barabasi_albert(300, 3, &mut StdRng::seed_from_u64(42)),
        ),
    ] {
        let opts = LanczosOptions::default();
        let sop = SymmetricWalkOp::with_pool(&g, Pool::serial());
        let basis = vec![sop.top_eigenvector()];
        let local = lanczos_extreme(
            &DeflatedOp::new(sop, &basis),
            opts,
            &mut StdRng::seed_from_u64(7),
        );
        for shards in SHARD_COUNTS {
            let dop = dist_op(&g, shards, true);
            let dist = lanczos_extreme(
                &DeflatedOp::new(dop, &basis),
                opts,
                &mut StdRng::seed_from_u64(7),
            );
            assert_eq!(
                local.top.to_bits(),
                dist.top.to_bits(),
                "{name} k={shards}: λ₂ differs ({} vs {})",
                local.top,
                dist.top
            );
            assert_eq!(
                local.bottom.to_bits(),
                dist.bottom.to_bits(),
                "{name} k={shards}: λₙ differs ({} vs {})",
                local.bottom,
                dist.bottom
            );
        }
    }
}

/// TVD decay curves: evolve a point source through the walk operator
/// and measure `0.5·Σ|x − π|` each step — the sampled-TVD probe's
/// arithmetic — on every backend.
fn tvd_curves_bitwise_across_backends() {
    const STEPS: usize = 30;
    for (name, g) in [
        ("barbell", fixtures::barbell(6, 0)),
        ("grid", fixtures::grid(8, 5)),
        (
            "ba",
            barabasi_albert(300, 3, &mut StdRng::seed_from_u64(42)),
        ),
    ] {
        let n = g.num_nodes();
        let total = g.total_degree() as f64;
        let pi: Vec<f64> = (0..n).map(|v| g.degree(v as u32) as f64 / total).collect();
        let tvd = |x: &[f64]| 0.5 * x.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum::<f64>();
        let mut want = Vec::with_capacity(STEPS);
        {
            let mut x = vec![0.0; n];
            x[0] = 1.0;
            for _ in 0..STEPS {
                x = reference_apply(&g, &x, false);
                want.push(tvd(&x));
            }
        }
        for shards in SHARD_COUNTS {
            let op = dist_op(&g, shards, false);
            let mut x = vec![0.0; n];
            x[0] = 1.0;
            let mut y = vec![0.0; n];
            for (step, want_t) in want.iter().enumerate() {
                op.try_apply(&x, &mut y)
                    .unwrap_or_else(|e| panic!("{name} k={shards} step {step}: {e}"));
                std::mem::swap(&mut x, &mut y);
                let got = tvd(&x);
                assert_eq!(
                    want_t.to_bits(),
                    got.to_bits(),
                    "{name} k={shards}: TVD curve diverges at step {step} ({want_t} vs {got})"
                );
            }
        }
    }
}

/// Worker death mid-job must surface a typed error (not hang), poison
/// the group, and a fresh operator must respawn and produce the same
/// bits. Runs last: it deliberately kills the 2-shard group.
fn worker_death_is_typed_and_recoverable() {
    let g = fixtures::grid(8, 5);
    let x = probe_vector(g.num_nodes());
    let want = reference_apply(&g, &x, false);
    let op = dist_op(&g, 2, false);
    let mut y = vec![0.0; g.num_nodes()];
    op.try_apply(&x, &mut y).expect("healthy group must apply");
    assert_bitwise(&want, &y, "pre-death apply");
    op.group().terminate_worker(1);
    let err = op
        .try_apply(&x, &mut y)
        .expect_err("apply against a dead worker must fail");
    assert!(
        matches!(
            err,
            ShardError::WorkerDied { .. } | ShardError::GroupPoisoned { .. }
        ),
        "unexpected error: {err}"
    );
    assert!(op.group().is_poisoned(), "death must poison the group");
    // every later round fails fast on the poisoned group
    let again = op.try_apply(&x, &mut y).expect_err("poisoned group");
    assert!(
        matches!(again, ShardError::GroupPoisoned { .. }),
        "unexpected error: {again}"
    );
    // the infallible trait surface falls back to the local kernel
    let mut z = vec![0.0; g.num_nodes()];
    op.apply(&x, &mut z);
    assert_bitwise(&want, &z, "post-death fallback");
    // a fresh operator re-obtains the group, which respawns the dead
    // worker — and the bits still match
    let fresh = dist_op(&g, 2, false);
    let mut y2 = vec![0.0; g.num_nodes()];
    fresh
        .try_apply(&x, &mut y2)
        .expect("respawned group must apply");
    assert_bitwise(&want, &y2, "post-respawn apply");
}

fn main() {
    // Must run before anything else: when spawned as `shard-worker`,
    // this call serves frames and exits instead of running tests.
    socmix_par::shard::worker_check();

    let tests: &[(&str, fn())] = &[
        (
            "matvec_bitwise_across_backends",
            matvec_bitwise_across_backends,
        ),
        (
            "apply_multi_bitwise_across_backends",
            apply_multi_bitwise_across_backends,
        ),
        ("mu_bitwise_across_backends", mu_bitwise_across_backends),
        (
            "tvd_curves_bitwise_across_backends",
            tvd_curves_bitwise_across_backends,
        ),
        (
            "worker_death_is_typed_and_recoverable",
            worker_death_is_typed_and_recoverable,
        ),
    ];
    println!("running {} shard determinism tests", tests.len());
    for (name, test) in tests {
        test();
        println!("test {name} ... ok");
    }
    println!("shard determinism suite: all {} tests passed", tests.len());
}
