//! Cross-thread-count determinism of the operator kernels.
//!
//! The parallel contract of the workspace: pool width changes
//! wall-clock, never bits. Every operator chunks its output rows into
//! disjoint ranges and never reassociates a floating-point reduction
//! across chunks, so a 1-, 2-, 8-, or 32-thread pool must produce
//! byte-identical output — including when threads vastly outnumber
//! rows, and on degenerate graphs (no edges, a single edge).
//!
//! The multi-process backend extends the same contract across shard
//! counts (`SOCMIX_SHARDS=1/2/4` bit-for-bit equal to shared memory);
//! that half lives in `tests/shard_determinism.rs`, a harness-free
//! binary because its workers are fork/execs of the test executable.

use rand::rngs::StdRng;
use rand::SeedableRng;
use socmix_gen::ba::barabasi_albert;
use socmix_graph::{Graph, GraphBuilder};
use socmix_linalg::{
    DeflatedOp, KernelConfig, LinearOp, LinearOpF32, MultiLinearOp, MultiVec, SymmetricWalkOp,
    SymmetricWalkOpF32, WalkOp,
};
use socmix_par::Pool;

/// Mildly irregular test graph: a BA preferential-attachment run,
/// large enough that every pool width actually splits it into
/// multiple chunks.
fn ba_graph() -> Graph {
    barabasi_albert(500, 3, &mut StdRng::seed_from_u64(42))
}

/// A deterministic but unstructured input vector.
fn probe_vector(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
        .collect()
}

const WIDTHS: [usize; 4] = [1, 2, 8, 32];

fn assert_bitwise_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: row {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn walk_op_bitwise_identical_across_pool_widths() {
    let g = ba_graph();
    let x = probe_vector(g.num_nodes());
    let serial = WalkOp::with_pool(&g, Pool::serial()).apply_vec(&x);
    for t in WIDTHS {
        let par = WalkOp::with_pool(&g, Pool::with_threads(t)).apply_vec(&x);
        assert_bitwise_eq(&serial, &par, "WalkOp");
    }
}

#[test]
fn symmetric_walk_op_bitwise_identical_across_pool_widths() {
    let g = ba_graph();
    let x = probe_vector(g.num_nodes());
    let serial = SymmetricWalkOp::with_pool(&g, Pool::serial()).apply_vec(&x);
    for t in WIDTHS {
        let par = SymmetricWalkOp::with_pool(&g, Pool::with_threads(t)).apply_vec(&x);
        assert_bitwise_eq(&serial, &par, "SymmetricWalkOp");
    }
}

#[test]
fn deflated_op_bitwise_identical_across_pool_widths() {
    let g = ba_graph();
    let x = probe_vector(g.num_nodes());
    let serial_sop = SymmetricWalkOp::with_pool(&g, Pool::serial());
    let basis = vec![serial_sop.top_eigenvector()];
    let serial = DeflatedOp::new(serial_sop, &basis).apply_vec(&x);
    for t in WIDTHS {
        let sop = SymmetricWalkOp::with_pool(&g, Pool::with_threads(t));
        let par = DeflatedOp::new(sop, &basis).apply_vec(&x);
        assert_bitwise_eq(&serial, &par, "DeflatedOp");
    }
}

#[test]
fn apply_multi_bitwise_identical_across_pool_widths() {
    let g = ba_graph();
    let n = g.num_nodes();
    let width = 5;
    let mut x = MultiVec::zeros(n, width);
    for c in 0..width {
        let col: Vec<f64> = probe_vector(n).iter().map(|v| v * (c + 1) as f64).collect();
        x.set_column(c, &col);
    }
    let mut serial = MultiVec::zeros(n, width);
    WalkOp::with_pool(&g, Pool::serial()).apply_multi(&x, &mut serial, width);
    for t in WIDTHS {
        let mut par = MultiVec::zeros(n, width);
        WalkOp::with_pool(&g, Pool::with_threads(t)).apply_multi(&x, &mut par, width);
        assert_bitwise_eq(serial.as_slice(), par.as_slice(), "apply_multi");
    }
}

#[test]
fn oversubscribed_pool_on_tiny_graph() {
    // 32 threads on 3 rows: most workers must find nothing to claim
    // and the answer must not change.
    let g = GraphBuilder::from_edges([(0, 1), (1, 2)]).build();
    let x = vec![0.25, 0.5, 0.25];
    let serial = WalkOp::with_pool(&g, Pool::serial()).apply_vec(&x);
    let par = WalkOp::with_pool(&g, Pool::with_threads(32)).apply_vec(&x);
    assert_bitwise_eq(&serial, &par, "oversubscribed WalkOp");
}

#[test]
fn single_edge_graph_all_widths() {
    let g = GraphBuilder::from_edges([(0, 1)]).build();
    let x = vec![0.75, 0.25];
    for t in WIDTHS {
        let y = WalkOp::with_pool(&g, Pool::with_threads(t)).apply_vec(&x);
        assert_eq!(y, vec![0.25, 0.75]);
        let s = SymmetricWalkOp::with_pool(&g, Pool::with_threads(t)).apply_vec(&x);
        assert_eq!(s, vec![0.25, 0.75]);
    }
}

#[test]
fn edgeless_graph_all_widths() {
    // every node isolated: the walk drops all mass, on any pool
    let mut b = GraphBuilder::from_edges([]);
    b.grow_to(4);
    let g = b.build();
    let x = vec![0.25; 4];
    for t in WIDTHS {
        let y = WalkOp::with_pool(&g, Pool::with_threads(t)).apply_vec(&x);
        assert_eq!(y, vec![0.0; 4]);
    }
}

#[test]
fn empty_graph_all_widths() {
    let g = Graph::empty(0);
    for t in WIDTHS {
        let y = WalkOp::with_pool(&g, Pool::with_threads(t)).apply_vec(&[]);
        assert!(y.is_empty());
    }
}

#[test]
fn blocked_kernel_bitwise_identical_to_scalar() {
    // The cache-blocked f64 gather visits each row's (sorted) columns
    // in the same ascending order as the scalar kernel, so it must be
    // bit-for-bit equal — including with a tiny column tile that
    // forces the multi-tile segmented path, and across pool widths.
    let g = ba_graph();
    let x = probe_vector(g.num_nodes());
    let scalar = WalkOp::with_kernel(&g, Pool::serial(), KernelConfig::scalar()).apply_vec(&x);
    for tile in [usize::MAX, 64, 7, 1] {
        for t in [1usize, 4] {
            let cfg = KernelConfig::blocked().col_tile(tile);
            let pool = if t == 1 {
                Pool::serial()
            } else {
                Pool::with_threads(t)
            };
            let y = WalkOp::with_kernel(&g, pool, cfg).apply_vec(&x);
            assert_bitwise_eq(&scalar, &y, "blocked WalkOp");
        }
    }
    let s_scalar =
        SymmetricWalkOp::with_kernel(&g, Pool::serial(), KernelConfig::scalar()).apply_vec(&x);
    for tile in [usize::MAX, 16, 3] {
        let cfg = KernelConfig::blocked().col_tile(tile);
        let y = SymmetricWalkOp::with_kernel(&g, Pool::serial(), cfg).apply_vec(&x);
        assert_bitwise_eq(&s_scalar, &y, "blocked SymmetricWalkOp");
    }
}

#[test]
fn blocked_apply_multi_bitwise_identical_to_scalar() {
    let g = ba_graph();
    let n = g.num_nodes();
    let width = 5;
    let mut x = MultiVec::zeros(n, width);
    for c in 0..width {
        let col: Vec<f64> = probe_vector(n).iter().map(|v| v * (c + 1) as f64).collect();
        x.set_column(c, &col);
    }
    let mut scalar = MultiVec::zeros(n, width);
    WalkOp::with_kernel(&g, Pool::serial(), KernelConfig::scalar()).apply_multi(
        &x,
        &mut scalar,
        width,
    );
    for tile in [usize::MAX, 128, 2] {
        for t in [1usize, 8] {
            let pool = if t == 1 {
                Pool::serial()
            } else {
                Pool::with_threads(t)
            };
            let op = WalkOp::with_kernel(&g, pool, KernelConfig::blocked().col_tile(tile));
            let mut y = MultiVec::zeros(n, width);
            op.apply_multi(&x, &mut y, width);
            assert_bitwise_eq(scalar.as_slice(), y.as_slice(), "blocked apply_multi");
        }
    }
}

#[test]
fn f32_kernel_tracks_f64_within_tolerance() {
    // The mixed-precision contract: per-application error within
    // ~1e-6 of the f64 operator on unit-scale inputs.
    let g = ba_graph();
    let n = g.num_nodes();
    let x = probe_vector(n);
    let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
    let f64_op = SymmetricWalkOp::with_pool(&g, Pool::serial());
    let want = f64_op.apply_vec(&x);
    for tile in [usize::MAX, 32] {
        let cfg = KernelConfig::mixed_f32().col_tile(tile);
        let op32 = SymmetricWalkOpF32::with_kernel(&g, Pool::serial(), cfg);
        let got = op32.apply_vec32(&x32);
        for (i, (w, g32)) in want.iter().zip(&got).enumerate() {
            assert!(
                (w - f64::from(*g32)).abs() <= 1e-6,
                "row {i}: f32 {g32} vs f64 {w} (tile {tile})"
            );
        }
    }
}

#[test]
fn f32_kernel_bitwise_identical_across_pool_widths() {
    // f32 results are approximate relative to f64, but they must
    // still be deterministic: pool width never changes bits.
    let g = ba_graph();
    let n = g.num_nodes();
    let x32: Vec<f32> = probe_vector(n).iter().map(|&v| v as f32).collect();
    let serial = SymmetricWalkOpF32::with_kernel(&g, Pool::serial(), KernelConfig::mixed_f32())
        .apply_vec32(&x32);
    for t in WIDTHS {
        let par =
            SymmetricWalkOpF32::with_kernel(&g, Pool::with_threads(t), KernelConfig::mixed_f32())
                .apply_vec32(&x32);
        for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "f32 row {i} differs ({a} vs {b})");
        }
    }
}

#[test]
fn spawn_dispatch_matches_persistent_bitwise() {
    // the spawn-per-call baseline uses the same chunk geometry, so
    // even it must agree bit-for-bit with the persistent runtime
    let g = ba_graph();
    let x = probe_vector(g.num_nodes());
    let persistent = WalkOp::with_pool(&g, Pool::with_threads(4)).apply_vec(&x);
    let spawned = WalkOp::with_pool(&g, Pool::with_threads(4).spawn_per_call()).apply_vec(&x);
    assert_bitwise_eq(&persistent, &spawned, "spawn vs persistent");
}
