//! Conjugate gradient for symmetric positive (semi)definite systems.
//!
//! Used by `socmix-markov`'s hitting-time solver: absorbing-walk
//! equations reduce to Laplacian-minor systems `L_B x = b`, which are
//! symmetric positive definite once at least one node is grounded.
//! Matrix-free, like everything else in this crate.

use crate::op::LinearOp;
use crate::vecops::{axpy, dot, norm2};

/// Options for [`conjugate_gradient`].
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Maximum iterations (defaults to 10·dim at solve time if 0).
    pub max_iter: usize,
    /// Relative residual target `‖b − Ax‖ / ‖b‖`.
    pub tol: f64,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iter: 0,
            tol: 1e-10,
        }
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// The solution estimate.
    pub x: Vec<f64>,
    /// Final relative residual.
    pub residual: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Solves `A x = b` for symmetric positive definite `A` by conjugate
/// gradients, starting from `x = 0`.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn conjugate_gradient<Op: LinearOp>(a: &Op, b: &[f64], opts: CgOptions) -> CgResult {
    let n = a.dim();
    assert_eq!(b.len(), n, "rhs dimension mismatch");
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return CgResult {
            x: vec![0.0; n],
            residual: 0.0,
            iterations: 0,
            converged: true,
        };
    }
    let max_iter = if opts.max_iter == 0 {
        (10 * n).max(100)
    } else {
        opts.max_iter
    };
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);
    let mut ap = vec![0.0; n];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        a.apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // not positive definite along p (or numerically exhausted)
            break;
        }
        let alpha = rs_old / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rs_new = dot(&r, &r);
        if rs_new.sqrt() / bnorm < opts.tol {
            rs_old = rs_new;
            break;
        }
        let beta = rs_new / rs_old;
        for (pi, ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs_old = rs_new;
    }
    let residual = rs_old.sqrt() / bnorm;
    CgResult {
        x,
        residual,
        iterations,
        converged: residual < opts.tol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::DenseOp;

    #[test]
    fn identity_system() {
        let op = DenseOp {
            data: vec![1.0, 0.0, 0.0, 1.0],
            n: 2,
        };
        let r = conjugate_gradient(&op, &[3.0, -4.0], CgOptions::default());
        assert!(r.converged);
        assert!((r.x[0] - 3.0).abs() < 1e-9);
        assert!((r.x[1] + 4.0).abs() < 1e-9);
    }

    #[test]
    fn spd_system() {
        // A = [[4,1],[1,3]], b = [1,2] → x = [1/11, 7/11]
        let op = DenseOp {
            data: vec![4.0, 1.0, 1.0, 3.0],
            n: 2,
        };
        let r = conjugate_gradient(&op, &[1.0, 2.0], CgOptions::default());
        assert!(r.converged);
        assert!((r.x[0] - 1.0 / 11.0).abs() < 1e-9);
        assert!((r.x[1] - 7.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs() {
        let op = DenseOp {
            data: vec![2.0, 0.0, 0.0, 2.0],
            n: 2,
        };
        let r = conjugate_gradient(&op, &[0.0, 0.0], CgOptions::default());
        assert!(r.converged);
        assert_eq!(r.x, vec![0.0, 0.0]);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn converges_in_at_most_n_steps_exact_arithmetic() {
        // CG terminates in ≤ n iterations (up to roundoff)
        let n = 8;
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = (i + 1) as f64;
        }
        let op = DenseOp { data, n };
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 3.0).collect();
        let r = conjugate_gradient(&op, &b, CgOptions::default());
        assert!(r.converged);
        assert!(r.iterations <= n + 1);
        for (i, (&xi, &bi)) in r.x.iter().zip(&b).enumerate() {
            assert!((xi * (i + 1) as f64 - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn iteration_cap_respected() {
        let op = DenseOp {
            data: vec![1e6, 0.0, 0.0, 1e-6],
            n: 2,
        };
        let opts = CgOptions {
            max_iter: 1,
            tol: 1e-15,
        };
        let r = conjugate_gradient(&op, &[1.0, 1.0], opts);
        assert_eq!(r.iterations, 1);
    }
}
