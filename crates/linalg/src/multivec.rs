//! Blocked multi-vector storage and batched operator application.
//!
//! The sampling method evolves thousands of independent source
//! distributions through the same walk operator. Done one vector at a
//! time, every source re-streams the whole CSR edge array through
//! cache — a GEMV when the workload is a GEMM. A [`MultiVec`] packs
//! `B` distributions as a **row-major `n × B` block** so that one CSR
//! traversal serves all `B` columns: each gathered neighbor row is
//! `B` contiguous doubles, which the compiler auto-vectorizes.
//!
//! [`MultiLinearOp::apply_multi`] is the batched counterpart of
//! [`LinearOp::apply`](crate::LinearOp::apply); per column it performs
//! the same floating-point operations in the same order as the serial
//! kernel, so batched results are bit-for-bit equal.

use crate::kernel::{self, KernelKind};
use crate::op::{LazyOp, LinearOp, WalkOp};
use socmix_obs::Counter;

/// Batched walk-operator applications (one CSR traversal each).
static MULTI_MATVECS: Counter = Counter::new("linalg.matvec.multi");
/// Total active columns served by those traversals — compare against
/// `linalg.matvec` to see how much CSR re-streaming the blocking saved.
static MULTI_COLUMNS: Counter = Counter::new("linalg.matvec.multi_cols");

/// A row-major `n × width` block of `width` stacked column vectors.
///
/// `data[i * width + c]` is entry `i` of column `c`. Rows are
/// contiguous, which is the layout the batched CSR gather wants.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiVec {
    data: Vec<f64>,
    n: usize,
    width: usize,
}

impl MultiVec {
    /// An all-zero block with `n` rows and `width` columns.
    pub fn zeros(n: usize, width: usize) -> Self {
        MultiVec {
            data: vec![0.0; n * width],
            n,
            width,
        }
    }

    /// Number of rows (the operator dimension).
    pub fn rows(&self) -> usize {
        self.n
    }

    /// Number of columns (the block width / stride).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Row `i` as a slice of `width` column entries.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.width..(i + 1) * self.width]
    }

    /// Entry `(i, c)`.
    #[inline]
    pub fn get(&self, i: usize, c: usize) -> f64 {
        self.data[i * self.width + c]
    }

    /// Sets entry `(i, c)`.
    #[inline]
    pub fn set(&mut self, i: usize, c: usize, v: f64) {
        self.data[i * self.width + c] = v;
    }

    /// Copies column `c` out as an ordinary vector.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.width, "column {c} out of range");
        (0..self.n).map(|i| self.get(i, c)).collect()
    }

    /// Overwrites column `c` from a slice of length `n`.
    pub fn set_column(&mut self, c: usize, v: &[f64]) {
        assert!(c < self.width, "column {c} out of range");
        assert_eq!(v.len(), self.n);
        for (i, &x) in v.iter().enumerate() {
            self.set(i, c, x);
        }
    }

    /// Swaps columns `a` and `b` in every row (used to compact
    /// retired columns out of the active prefix).
    pub fn swap_columns(&mut self, a: usize, b: usize) {
        assert!(a < self.width && b < self.width, "column out of range");
        if a == b {
            return;
        }
        for i in 0..self.n {
            self.data.swap(i * self.width + a, i * self.width + b);
        }
    }

    /// Sets every entry to zero.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// The raw row-major backing slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The raw mutable row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// Operators that can apply themselves to a block of vectors in one
/// pass over their sparsity structure.
///
/// `width` restricts work to the first `width` columns of each row
/// (the *active prefix*) — callers that retire converged columns swap
/// them past the prefix and shrink `width` instead of reallocating.
///
/// # Exactness contract
///
/// For every active column `c`, `apply_multi` must produce exactly the
/// floating-point result of the serial
/// [`LinearOp::apply`](crate::LinearOp::apply) on that column: same
/// operations, same order, no reassociation. The batch engine's
/// equivalence tests rely on it.
pub trait MultiLinearOp: LinearOp {
    /// Raw-slice core: computes `Y[:, 0..width] = Op · X[:, 0..width]`
    /// over row-major blocks with `stride` doubles per row. `xs` and
    /// `ys` must each hold at least `dim * stride` entries. This is
    /// the entry point for callers whose blocks live in arena scratch
    /// rather than an owned [`MultiVec`].
    fn apply_multi_raw(&self, xs: &[f64], ys: &mut [f64], stride: usize, width: usize);

    /// Computes `Y[:, 0..width] = Op · X[:, 0..width]` column-wise in
    /// one traversal.
    ///
    /// # Panics
    ///
    /// Panics if the blocks disagree with [`LinearOp::dim`] or their
    /// widths differ or are smaller than `width`.
    fn apply_multi(&self, x: &MultiVec, y: &mut MultiVec, width: usize) {
        check_block_shapes(self.dim(), x.rows(), x.width(), y.rows(), y.width(), width);
        self.apply_multi_raw(x.as_slice(), y.as_mut_slice(), x.width(), width);
    }
}

fn check_block_shapes(
    dim: usize,
    x_rows: usize,
    x_width: usize,
    y_rows: usize,
    y_width: usize,
    width: usize,
) {
    assert_eq!(x_rows, dim, "input block row mismatch");
    assert_eq!(y_rows, dim, "output block row mismatch");
    assert_eq!(x_width, y_width, "block stride mismatch");
    assert!(width <= x_width, "active width exceeds block width");
}

impl MultiLinearOp for WalkOp<'_> {
    fn apply_multi_raw(&self, xs: &[f64], ys: &mut [f64], stride: usize, width: usize) {
        let n = self.dim();
        debug_assert!(xs.len() >= n * stride && ys.len() >= n * stride);
        debug_assert!(width <= stride);
        if width == 0 {
            return;
        }
        MULTI_MATVECS.incr();
        MULTI_COLUMNS.add(width as u64);
        if let Some(dist) = self.dist() {
            match dist.try_apply_multi(xs, ys, stride, width) {
                Ok(()) => return,
                Err(e) => socmix_obs::warn_once!(
                    "shard",
                    "sharded batched matvec failed ({e}); continuing on the \
                     shared-memory kernel"
                ),
            }
        }
        let g = self.graph();
        let offsets = g.offsets();
        let targets = g.raw_targets();
        let inv_deg = self.inv_degrees();
        // Disjoint row ranges of y per chunk; same SendMut pattern as
        // the serial kernel.
        let yptr = SendMutF64(ys.as_mut_ptr());
        let ypref = &yptr;
        match self.kernel().kind {
            KernelKind::Scalar => {
                self.pool().for_each_chunk(n, move |range| {
                    for j in range {
                        // SAFETY: chunks own disjoint row ranges of y.
                        let yr = unsafe {
                            std::slice::from_raw_parts_mut(ypref.0.add(j * stride), width)
                        };
                        yr.fill(0.0);
                        for &i in &targets[offsets[j]..offsets[j + 1]] {
                            let i = i as usize;
                            let d = inv_deg[i];
                            let xr = &xs[i * stride..i * stride + width];
                            // Per column: y[j,c] += x[i,c] * (1/deg i) —
                            // the exact two-op sequence of the serial
                            // kernel (z = x·inv rounded, accumulate).
                            for c in 0..width {
                                yr[c] += xr[c] * d;
                            }
                        }
                    }
                });
            }
            // The blocked multi-gather keeps the per-column operation
            // sequence of the scalar path (one fma-shaped pair per
            // edge, ascending columns), so it stays bit-for-bit equal;
            // there is no f32 block path, so F32 shares it.
            KernelKind::Blocked | KernelKind::F32 => {
                // Scale the column tile down by the row footprint so a
                // tile of x-rows still fits the same cache budget.
                let tile = (self.kernel().col_tile / width.max(1)).max(1);
                self.pool().for_each_chunk(n, move |range| {
                    // SAFETY: chunks own disjoint row ranges of y.
                    let yr = unsafe {
                        std::slice::from_raw_parts_mut(
                            ypref.0.add(range.start * stride),
                            range.len() * stride,
                        )
                    };
                    kernel::gather_rows_multi_f64(
                        offsets, targets, inv_deg, xs, stride, width, range, tile, yr,
                    );
                });
            }
        }
    }
}

impl<Op: MultiLinearOp> MultiLinearOp for LazyOp<Op> {
    fn apply_multi_raw(&self, xs: &[f64], ys: &mut [f64], stride: usize, width: usize) {
        self.inner().apply_multi_raw(xs, ys, stride, width);
        for i in 0..self.dim() {
            let base = i * stride;
            for c in 0..width {
                ys[base + c] = 0.5 * (ys[base + c] + xs[base + c]);
            }
        }
    }
}

/// A borrowed row-major `n × width` block over caller-owned storage —
/// the [`MultiVec`] shape without the owned allocation, so batch
/// drivers can ping-pong blocks carved from arena scratch
/// ([`crate::workspace::with_arena`]) instead of round-tripping the
/// allocator per call.
#[derive(Debug)]
pub struct MultiVecMut<'a> {
    data: &'a mut [f64],
    n: usize,
    width: usize,
}

impl<'a> MultiVecMut<'a> {
    /// Wraps `data` as an `n × width` block.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `n * width` long.
    pub fn new(data: &'a mut [f64], n: usize, width: usize) -> Self {
        assert_eq!(data.len(), n * width, "backing slice length mismatch");
        MultiVecMut { data, n, width }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.n
    }

    /// Number of columns (the stride).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Entry `(i, c)`.
    #[inline]
    pub fn get(&self, i: usize, c: usize) -> f64 {
        self.data[i * self.width + c]
    }

    /// Sets entry `(i, c)`.
    #[inline]
    pub fn set(&mut self, i: usize, c: usize, v: f64) {
        self.data[i * self.width + c] = v;
    }

    /// Swaps columns `a` and `b` in every row.
    pub fn swap_columns(&mut self, a: usize, b: usize) {
        assert!(a < self.width && b < self.width, "column out of range");
        if a == b {
            return;
        }
        for i in 0..self.n {
            self.data.swap(i * self.width + a, i * self.width + b);
        }
    }

    /// Sets every entry to zero.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// The raw row-major backing slice.
    pub fn as_slice(&self) -> &[f64] {
        self.data
    }

    /// The raw mutable row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.data
    }
}

/// Raw-pointer wrapper for disjoint-row writes (same pattern as the
/// serial operators).
struct SendMutF64(*mut f64);
// SAFETY: each worker writes only the rows of its assigned chunk, and
// chunks partition the row space, so the shared base pointer never
// creates overlapping mutable access from two threads.
unsafe impl Send for SendMutF64 {}
// SAFETY: copies share only the pointer value; writes stay
// row-disjoint per the Send argument above.
unsafe impl Sync for SendMutF64 {}

#[cfg(test)]
mod tests {
    use super::*;
    use socmix_graph::GraphBuilder;
    use socmix_par::Pool;

    fn diamond() -> socmix_graph::Graph {
        GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).build()
    }

    #[test]
    fn multivec_roundtrip() {
        let mut m = MultiVec::zeros(3, 2);
        m.set(0, 0, 1.0);
        m.set(2, 1, 5.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.column(1), vec![0.0, 0.0, 5.0]);
        assert_eq!(m.row(2), &[0.0, 5.0]);
        m.set_column(0, &[7.0, 8.0, 9.0]);
        assert_eq!(m.column(0), vec![7.0, 8.0, 9.0]);
    }

    #[test]
    fn swap_columns_swaps_every_row() {
        let mut m = MultiVec::zeros(4, 3);
        m.set_column(0, &[1.0, 2.0, 3.0, 4.0]);
        m.set_column(2, &[5.0, 6.0, 7.0, 8.0]);
        m.swap_columns(0, 2);
        assert_eq!(m.column(2), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.column(0), vec![5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn batched_walk_matches_serial_bitwise() {
        let g = diamond();
        let op = WalkOp::with_pool(&g, Pool::serial());
        let n = g.num_nodes();
        let cols: Vec<Vec<f64>> = (0..4)
            .map(|c| {
                (0..n)
                    .map(|i| ((i * 7 + c * 3) % 5) as f64 / 10.0)
                    .collect()
            })
            .collect();
        let mut x = MultiVec::zeros(n, 4);
        for (c, col) in cols.iter().enumerate() {
            x.set_column(c, col);
        }
        let mut y = MultiVec::zeros(n, 4);
        op.apply_multi(&x, &mut y, 4);
        for (c, col) in cols.iter().enumerate() {
            let serial = op.apply_vec(col);
            assert_eq!(y.column(c), serial, "column {c} must match bit-for-bit");
        }
    }

    #[test]
    fn batched_walk_parallel_pool_matches_serial() {
        let g = diamond();
        let op = WalkOp::with_pool(&g, Pool::with_threads(4));
        let n = g.num_nodes();
        let mut x = MultiVec::zeros(n, 3);
        for c in 0..3 {
            let col: Vec<f64> = (0..n).map(|i| (i + c + 1) as f64).collect();
            x.set_column(c, &col);
        }
        let mut y = MultiVec::zeros(n, 3);
        op.apply_multi(&x, &mut y, 3);
        let serial_op = WalkOp::with_pool(&g, Pool::serial());
        for c in 0..3 {
            assert_eq!(y.column(c), serial_op.apply_vec(&x.column(c)));
        }
    }

    #[test]
    fn batched_lazy_matches_serial_bitwise() {
        let g = diamond();
        let op = LazyOp::new(WalkOp::with_pool(&g, Pool::serial()));
        let n = g.num_nodes();
        let col: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let mut x = MultiVec::zeros(n, 2);
        x.set_column(0, &col);
        x.set_column(1, &col);
        let mut y = MultiVec::zeros(n, 2);
        op.apply_multi(&x, &mut y, 2);
        let serial = op.apply_vec(&col);
        assert_eq!(y.column(0), serial);
        assert_eq!(y.column(1), serial);
    }

    #[test]
    fn width_restricts_active_prefix() {
        let g = diamond();
        let op = WalkOp::with_pool(&g, Pool::serial());
        let n = g.num_nodes();
        let mut x = MultiVec::zeros(n, 3);
        x.set(0, 0, 1.0);
        x.set(0, 1, 1.0);
        x.set(0, 2, 1.0);
        let mut y = MultiVec::zeros(n, 3);
        // poison the inactive column; it must stay untouched
        y.set_column(2, &vec![9.0; n]);
        op.apply_multi(&x, &mut y, 2);
        assert_eq!(y.column(2), vec![9.0; n]);
        assert_eq!(y.column(0), op.apply_vec(&x.column(0)));
    }

    #[test]
    fn blocked_multi_is_bitwise_scalar() {
        use crate::kernel::KernelConfig;
        let g = diamond();
        let n = g.num_nodes();
        let scalar = WalkOp::with_kernel(&g, Pool::serial(), KernelConfig::scalar());
        let mut x = MultiVec::zeros(n, 3);
        for c in 0..3 {
            let col: Vec<f64> = (0..n)
                .map(|i| ((i * 11 + c * 5) % 7) as f64 / 7.0)
                .collect();
            x.set_column(c, &col);
        }
        let mut want = MultiVec::zeros(n, 3);
        scalar.apply_multi(&x, &mut want, 3);
        for cfg in [
            KernelConfig::blocked(),
            KernelConfig::blocked().col_tile(2), // force the multi-tile path
            KernelConfig::mixed_f32(),           // f64 block path is shared
        ] {
            let op = WalkOp::with_kernel(&g, Pool::serial(), cfg);
            let mut y = MultiVec::zeros(n, 3);
            op.apply_multi(&x, &mut y, 3);
            assert_eq!(y.as_slice(), want.as_slice(), "kernel {:?}", cfg.kind);
        }
    }

    #[test]
    fn apply_multi_raw_matches_apply_multi() {
        let g = diamond();
        let n = g.num_nodes();
        let op = WalkOp::with_pool(&g, Pool::serial());
        let mut x = MultiVec::zeros(n, 2);
        for c in 0..2 {
            let col: Vec<f64> = (0..n).map(|i| (i + c) as f64).collect();
            x.set_column(c, &col);
        }
        let mut y = MultiVec::zeros(n, 2);
        op.apply_multi(&x, &mut y, 2);
        let mut raw = vec![0.0; n * 2];
        op.apply_multi_raw(x.as_slice(), &mut raw, 2, 2);
        assert_eq!(raw.as_slice(), y.as_slice());
    }

    #[test]
    fn multivec_mut_view_roundtrip() {
        let mut backing = vec![0.0; 4 * 2];
        let mut v = MultiVecMut::new(&mut backing, 4, 2);
        assert_eq!(v.rows(), 4);
        assert_eq!(v.width(), 2);
        v.set(1, 0, 3.0);
        v.set(1, 1, 4.0);
        assert_eq!(v.get(1, 0), 3.0);
        v.swap_columns(0, 1);
        assert_eq!(v.get(1, 0), 4.0);
        assert_eq!(v.get(1, 1), 3.0);
        v.clear();
        assert!(v.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "backing slice length mismatch")]
    fn multivec_mut_rejects_short_backing() {
        let mut backing = vec![0.0; 5];
        let _ = MultiVecMut::new(&mut backing, 4, 2);
    }

    #[test]
    fn zero_width_is_noop() {
        let g = diamond();
        let op = WalkOp::with_pool(&g, Pool::serial());
        let x = MultiVec::zeros(g.num_nodes(), 2);
        let mut y = MultiVec::zeros(g.num_nodes(), 2);
        op.apply_multi(&x, &mut y, 0);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }
}
