//! Lanczos iteration with full reorthogonalization.
//!
//! The production SLEM path: run Lanczos on the deflated symmetric
//! walk operator and read the extreme Ritz values — the top one
//! converges to λ₂ and the bottom one to λₙ, giving
//! `µ = max(λ₂, −λₙ)`.
//!
//! Full reorthogonalization (two Gram–Schmidt passes against the
//! whole basis per step) trades memory — `O(n·k)` for `k` basis
//! vectors — for unconditional numerical robustness; without it,
//! Lanczos famously produces ghost copies of converged eigenvalues.
//! At the basis sizes extremal problems need (k ≤ a few hundred) this
//! is the right trade. For graphs too large for the basis to fit in
//! memory, use [`crate::power::power_iteration`], which needs O(n).

use crate::op::{LinearOp, LinearOpF32};
use crate::tridiag::tridiag_eigen;
use crate::vecops::{
    axpy, dot, dot32, norm2, norm2_32, normalize, normalize32, project_out, project_out32, scale,
};
use rand::Rng;
use socmix_obs::{obs_debug, Counter, Histogram, Span};

static RUNS: Counter = Counter::new("linalg.lanczos.runs");
static STEPS: Counter = Counter::new("linalg.lanczos.steps");
/// Mixed-precision driver invocations.
static MIXED_RUNS: Counter = Counter::new("linalg.lanczos.mixed_runs");
/// Wall time per Lanczos run (extreme/topk, scalar and mixed); on a
/// trace timeline one span per SLEM solve.
static RUN_NS: Histogram = Histogram::new("linalg.lanczos.run_ns");

/// β below this level in the f32 recurrence means the Krylov space is
/// exhausted *at f32 resolution* — continuing would only orthogonalize
/// rounding noise.
const F32_BETA_FLOOR: f64 = 1e-6;
/// Ritz-residual level the f32 recurrence can meaningfully certify;
/// in-loop convergence checks stop here even when `opts.tol` is
/// tighter, handing the rest to the f64 polish.
const F32_RESIDUAL_FLOOR: f64 = 1e-6;
/// Residual tolerance the polished f64 Ritz pairs are held to when
/// reporting `converged`: the basis itself carries f32-level error, so
/// tolerances tighter than this are not attainable on the mixed path.
const MIXED_TOL_FLOOR: f64 = 1e-5;
/// f64 shifted power-iteration refinement steps per extreme vector.
const MIXED_REFINE_STEPS: usize = 2;

/// Options for [`lanczos_extreme`].
#[derive(Debug, Clone, Copy)]
pub struct LanczosOptions {
    /// Maximum Lanczos steps (= maximum basis size).
    pub max_iter: usize,
    /// Residual tolerance for the extreme Ritz pairs.
    pub tol: f64,
    /// Check convergence every this many steps.
    pub check_every: usize,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_iter: 300,
            tol: 1e-9,
            check_every: 10,
        }
    }
}

/// Result of [`lanczos_extreme`].
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Largest Ritz value (→ largest eigenvalue of the operator).
    pub top: f64,
    /// Smallest Ritz value (→ smallest eigenvalue of the operator).
    pub bottom: f64,
    /// Residual bound `|β_k · s_k|` for the top pair.
    pub top_residual: f64,
    /// Residual bound for the bottom pair.
    pub bottom_residual: f64,
    /// Lanczos steps taken.
    pub iterations: usize,
    /// Whether both residuals met the tolerance.
    pub converged: bool,
}

/// Runs Lanczos on a symmetric operator and returns its extreme
/// eigenvalues.
///
/// The starting vector is random (from `rng`) — callers wanting the
/// operator restricted to a subspace should wrap it in
/// [`crate::op::DeflatedOp`], whose projection is applied on every
/// operator application, keeping the Krylov space orthogonal to the
/// deflated directions.
///
/// # Panics
///
/// Panics if the operator dimension is 0.
pub fn lanczos_extreme<Op: LinearOp, R: Rng + ?Sized>(
    op: &Op,
    opts: LanczosOptions,
    rng: &mut R,
) -> LanczosResult {
    let n = op.dim();
    assert!(n > 0, "operator must be non-empty");
    RUNS.incr();
    let _span = Span::start(&RUN_NS);
    let max_iter = opts.max_iter.min(n).max(1);

    // random start, normalized
    let mut v: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    // one operator application folds the start into the operator's
    // range (for a DeflatedOp this also projects out the deflated
    // directions); if it vanishes, fall back to the raw random vector.
    {
        let w = op.apply_vec(&v);
        if norm2(&w) > 1e-12 {
            v = w;
        }
    }
    if normalize(&mut v) == 0.0 {
        // operator is zero on this vector; report a zero spectrum
        return LanczosResult {
            top: 0.0,
            bottom: 0.0,
            top_residual: 0.0,
            bottom_residual: 0.0,
            iterations: 0,
            converged: true,
        };
    }

    let mut basis: Vec<Vec<f64>> = vec![v];
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();

    let result =
        |alphas: &[f64], betas: &[f64], iters: usize, forced: bool| -> Option<LanczosResult> {
            if alphas.is_empty() {
                return None;
            }
            let k = alphas.len();
            let (vals, vecs) = tridiag_eigen(alphas, &betas[..k - 1]);
            let beta_last = betas.get(k - 1).copied().unwrap_or(0.0);
            // residual bound for Ritz pair i: |β_k| · |s_{k,i}| where s is
            // the bottom component of T's eigenvector
            let res_top = beta_last.abs() * vecs[0][k - 1].abs();
            let res_bot = beta_last.abs() * vecs[k - 1][k - 1].abs();
            // residual trajectory: one event per convergence check
            obs_debug!(
                "linalg.lanczos",
                "step {iters}: ritz [{:.8}, {:.8}] residuals [{res_top:.3e}, {res_bot:.3e}]",
                vals[k - 1],
                vals[0]
            );
            let converged = res_top < opts.tol && res_bot < opts.tol;
            if converged || forced {
                Some(LanczosResult {
                    top: vals[0],
                    bottom: vals[k - 1],
                    top_residual: res_top,
                    bottom_residual: res_bot,
                    iterations: iters,
                    converged,
                })
            } else {
                None
            }
        };

    for j in 0..max_iter {
        STEPS.incr();
        // `w` is the only per-step allocation left: it becomes the
        // next basis vector (storage the algorithm must keep), while
        // the operator's own scratch is reused across applies.
        let mut w = vec![0.0; n];
        op.apply(&basis[j], &mut w);
        let alpha = dot(&w, &basis[j]);
        axpy(-alpha, &basis[j], &mut w);
        if j > 0 {
            let beta_prev = betas[j - 1];
            axpy(-beta_prev, &basis[j - 1], &mut w);
        }
        // full reorthogonalization, two passes
        for _ in 0..2 {
            for b in &basis {
                project_out(&mut w, b);
            }
        }
        alphas.push(alpha);
        let beta = norm2(&w);
        if beta < 1e-14 {
            // invariant subspace found: the tridiagonal matrix is exact
            betas.push(0.0);
            return result(&alphas, &betas, j + 1, true).expect("nonempty");
        }
        betas.push(beta);
        if basis.len() == max_iter {
            break;
        }
        normalize(&mut w);
        basis.push(w);

        if (j + 1) % opts.check_every == 0 {
            if let Some(r) = result(&alphas, &betas, j + 1, false) {
                return r;
            }
        }
    }
    let iters = alphas.len();
    result(&alphas, &betas, iters, true).expect("nonempty")
}

/// Mixed-precision Lanczos: the three-term recurrence and the full
/// reorthogonalization run entirely in f32 (half the memory traffic
/// and basis footprint), with every reduction accumulated in f64; the
/// extreme Ritz vectors are then reconstructed in f64, refined with a
/// few shifted power steps, and the reported eigenvalues are their
/// f64 Rayleigh quotients.
///
/// `op64` and `op32` must represent the same operator at the two
/// precisions. Because the Rayleigh quotient is quadratically accurate
/// in the vector error, an f32-accurate basis (vector error ≈1e-6)
/// yields eigenvalues accurate to ≈1e-12 after the polish. Residuals
/// and `converged` are measured in f64 against
/// `opts.tol.max(1e-5)` — tolerances tighter than the floor are not
/// attainable from an f32 basis and are reported honestly as such.
///
/// # Panics
///
/// Panics if the operator dimension is 0 or the two dims disagree.
pub fn lanczos_extreme_mixed<Op64, Op32, R>(
    op64: &Op64,
    op32: &Op32,
    opts: LanczosOptions,
    rng: &mut R,
) -> LanczosResult
where
    Op64: LinearOp,
    Op32: LinearOpF32,
    R: Rng + ?Sized,
{
    let n = op64.dim();
    assert!(n > 0, "operator must be non-empty");
    assert_eq!(op32.dim(), n, "f32/f64 operator dimension mismatch");
    RUNS.incr();
    MIXED_RUNS.incr();
    let _span = Span::start(&RUN_NS);
    let max_iter = opts.max_iter.min(n).max(1);

    // random start, folded into the operator's range (projects out the
    // deflated directions when Op is deflated), in f32
    let mut v32: Vec<f32> = (0..n).map(|_| (rng.random::<f64>() - 0.5) as f32).collect();
    {
        let mut w32 = vec![0.0f32; n];
        op32.apply32(&v32, &mut w32);
        if norm2_32(&w32) > 1e-6 {
            v32 = w32;
        }
    }
    if normalize32(&mut v32) == 0.0 {
        return LanczosResult {
            top: 0.0,
            bottom: 0.0,
            top_residual: 0.0,
            bottom_residual: 0.0,
            iterations: 0,
            converged: true,
        };
    }

    let mut basis: Vec<Vec<f32>> = vec![v32];
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();
    let loop_tol = opts.tol.max(F32_RESIDUAL_FLOOR);

    for j in 0..max_iter {
        STEPS.incr();
        let mut w = vec![0.0f32; n];
        op32.apply32(&basis[j], &mut w);
        let alpha = dot32(&w, &basis[j]);
        crate::vecops::axpy32(-(alpha as f32), &basis[j], &mut w);
        if j > 0 {
            crate::vecops::axpy32(-(betas[j - 1] as f32), &basis[j - 1], &mut w);
        }
        // full reorthogonalization, two passes (coefficients in f64)
        for _ in 0..2 {
            for b in &basis {
                project_out32(&mut w, b);
            }
        }
        alphas.push(alpha);
        let beta = norm2_32(&w);
        if beta < F32_BETA_FLOOR {
            // Krylov space exhausted at f32 resolution
            betas.push(0.0);
            break;
        }
        betas.push(beta);
        if basis.len() == max_iter {
            break;
        }
        normalize32(&mut w);
        basis.push(w);

        if (j + 1) % opts.check_every == 0 {
            let k = alphas.len();
            let (vals, vecs) = tridiag_eigen(&alphas, &betas[..k - 1]);
            let res_top = betas[k - 1].abs() * vecs[0][k - 1].abs();
            let res_bot = betas[k - 1].abs() * vecs[k - 1][k - 1].abs();
            obs_debug!(
                "linalg.lanczos",
                "mixed step {k}: ritz [{:.8}, {:.8}] residuals [{res_top:.3e}, {res_bot:.3e}]",
                vals[k - 1],
                vals[0]
            );
            if res_top < loop_tol && res_bot < loop_tol {
                break;
            }
        }
    }

    // --- f64 polish: reconstruct the extreme Ritz vectors from the
    // f32 basis, refine each with a few shifted power steps, and
    // re-measure everything in f64.
    let m = alphas.len();
    let (_, vecs) = tridiag_eigen(&alphas, &betas[..m - 1]);
    let reconstruct = |sv: &[f64]| -> Vec<f64> {
        let mut rv = vec![0.0f64; n];
        for (i, b) in basis.iter().take(m).enumerate() {
            let c = sv[i];
            for (ri, &bi) in rv.iter_mut().zip(b) {
                *ri += c * f64::from(bi);
            }
        }
        normalize(&mut rv);
        rv
    };
    // `shift = +1` refines toward the top of the spectrum via the
    // half-shifted operator (I + Op)/2, whose dominant eigenvector is
    // the wanted one; `shift = -1` uses (I − Op)/2 for the bottom.
    // Both applications go through op64, so a deflated operator keeps
    // projecting the iterate back into the complement.
    let polish = |mut v: Vec<f64>, shift: f64| -> (f64, f64) {
        let mut w = vec![0.0; n];
        for _ in 0..MIXED_REFINE_STEPS {
            op64.apply(&v, &mut w);
            scale(&mut w, 0.5 * shift);
            axpy(0.5, &v, &mut w);
            if normalize(&mut w) == 0.0 {
                break;
            }
            std::mem::swap(&mut v, &mut w);
        }
        op64.apply(&v, &mut w);
        let lambda = dot(&v, &w);
        axpy(-lambda, &v, &mut w);
        (lambda, norm2(&w))
    };
    let (top, top_residual) = polish(reconstruct(&vecs[0]), 1.0);
    let (bottom, bottom_residual) = polish(reconstruct(&vecs[m - 1]), -1.0);
    let mixed_tol = opts.tol.max(MIXED_TOL_FLOOR);
    LanczosResult {
        top,
        bottom,
        top_residual,
        bottom_residual,
        iterations: m,
        converged: top_residual < mixed_tol && bottom_residual < mixed_tol,
    }
}

/// Result of [`lanczos_topk`]: the leading Ritz pairs.
#[derive(Debug, Clone)]
pub struct TopkResult {
    /// Ritz values, descending; `values.len() == k` requested (or the
    /// reached basis size if smaller).
    pub values: Vec<f64>,
    /// `vectors[j]` is the unit Ritz vector for `values[j]`.
    pub vectors: Vec<Vec<f64>>,
    /// Residual bounds `|β·s|` per pair.
    pub residuals: Vec<f64>,
    /// Lanczos steps taken.
    pub iterations: usize,
}

/// Runs Lanczos and returns the `k` *largest* eigenpairs (values and
/// vectors) of a symmetric operator.
///
/// Used by the spectral-embedding clustering in `socmix-community`:
/// on the deflated walk operator the top-k pairs are λ₂..λ_{k+1} and
/// their eigenvectors — the coordinates that separate communities.
///
/// Convergence is judged on the k-th pair's residual; the basis grows
/// until `opts.max_iter`.
pub fn lanczos_topk<Op: LinearOp, R: Rng + ?Sized>(
    op: &Op,
    k: usize,
    opts: LanczosOptions,
    rng: &mut R,
) -> TopkResult {
    let n = op.dim();
    assert!(n > 0 && k >= 1);
    RUNS.incr();
    let _span = Span::start(&RUN_NS);
    let max_iter = opts.max_iter.min(n).max(k);

    let mut v: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    {
        let w = op.apply_vec(&v);
        if norm2(&w) > 1e-12 {
            v = w;
        }
    }
    if normalize(&mut v) == 0.0 {
        return TopkResult {
            values: vec![0.0; k.min(n)],
            vectors: vec![vec![0.0; n]; k.min(n)],
            residuals: vec![0.0; k.min(n)],
            iterations: 0,
        };
    }
    let mut basis: Vec<Vec<f64>> = vec![v];
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();
    let mut exhausted = false;

    for j in 0..max_iter {
        STEPS.incr();
        let mut w = vec![0.0; n];
        op.apply(&basis[j], &mut w);
        let alpha = dot(&w, &basis[j]);
        axpy(-alpha, &basis[j], &mut w);
        if j > 0 {
            axpy(-betas[j - 1], &basis[j - 1], &mut w);
        }
        for _ in 0..2 {
            for b in &basis {
                project_out(&mut w, b);
            }
        }
        alphas.push(alpha);
        let beta = norm2(&w);
        if beta < 1e-14 {
            betas.push(0.0);
            exhausted = true;
            break;
        }
        betas.push(beta);
        if basis.len() == max_iter {
            break;
        }
        normalize(&mut w);
        basis.push(w);

        // convergence check on the k-th pair
        if (j + 1) % opts.check_every == 0 && j + 1 >= k {
            let m = alphas.len();
            let (_, vecs) = tridiag_eigen(&alphas, &betas[..m - 1]);
            let res_k = betas[m - 1].abs() * vecs[k.min(m) - 1][m - 1].abs();
            obs_debug!("linalg.lanczos", "topk step {m}: residual {res_k:.3e}");
            if res_k < opts.tol {
                break;
            }
        }
    }
    let m = alphas.len();
    let (vals, vecs) = tridiag_eigen(&alphas, &betas[..m - 1]);
    let beta_last = if exhausted { 0.0 } else { betas[m - 1] };
    let kk = k.min(m);
    let mut out_vecs = Vec::with_capacity(kk);
    let mut residuals = Vec::with_capacity(kk);
    for sv in vecs.iter().take(kk) {
        // Ritz vector: Σ_i s_{i,j} · v_i (the basis may hold one more
        // vector than the tridiagonal matrix has rows)
        let mut rv = vec![0.0f64; n];
        for (i, b) in basis.iter().take(m).enumerate() {
            axpy(sv[i], b, &mut rv);
        }
        normalize(&mut rv);
        out_vecs.push(rv);
        residuals.push(beta_last.abs() * sv[m - 1].abs());
    }
    TopkResult {
        values: vals[..kk].to_vec(),
        vectors: out_vecs,
        residuals,
        iterations: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{jacobi_eigen, slem_dense, DenseMatrix};
    use crate::op::{DeflatedOp, DenseOp, SymmetricWalkOp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socmix_graph::GraphBuilder;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_operator_extremes() {
        let n = 20;
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = (i as f64) / (n as f64 - 1.0) * 2.0 - 1.0; // [-1, 1]
        }
        let op = DenseOp { data, n };
        let mut rng = StdRng::seed_from_u64(0);
        let r = lanczos_extreme(&op, LanczosOptions::default(), &mut rng);
        assert!(r.converged);
        assert_close(r.top, 1.0, 1e-8);
        assert_close(r.bottom, -1.0, 1e-8);
    }

    #[test]
    fn agrees_with_jacobi_on_random_symmetric() {
        let n = 40;
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                let v = (((i * 31 + j * 17 + 3) % 101) as f64) / 101.0 - 0.5;
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        let (jv, _) = jacobi_eigen(&m);
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = m.get(i, j);
            }
        }
        let op = DenseOp { data, n };
        let mut rng = StdRng::seed_from_u64(1);
        let r = lanczos_extreme(&op, LanczosOptions::default(), &mut rng);
        assert_close(r.top, jv[0], 1e-7);
        assert_close(r.bottom, jv[n - 1], 1e-7);
    }

    #[test]
    fn walk_spectrum_top_is_one() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)]).build();
        let op = SymmetricWalkOp::new(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let r = lanczos_extreme(&op, LanczosOptions::default(), &mut rng);
        assert_close(r.top, 1.0, 1e-9);
    }

    #[test]
    fn deflated_walk_gives_slem() {
        // odd cycle: SLEM = cos(π/n) (the −cos(π/n) end dominates)
        let n = 9;
        let g = {
            let mut b = GraphBuilder::new();
            for i in 0..n as u32 {
                b.add_edge(i, (i + 1) % n as u32);
            }
            b.build()
        };
        let sop = SymmetricWalkOp::new(&g);
        let basis = vec![sop.top_eigenvector()];
        let defl = DeflatedOp::new(SymmetricWalkOp::new(&g), &basis);
        let mut rng = StdRng::seed_from_u64(3);
        let r = lanczos_extreme(&defl, LanczosOptions::default(), &mut rng);
        let mu = r.top.max(-r.bottom);
        assert_close(mu, (std::f64::consts::PI / n as f64).cos(), 1e-8);
    }

    #[test]
    fn deflated_matches_dense_slem_on_random_graph() {
        use rand::Rng;
        let mut grng = StdRng::seed_from_u64(7);
        // connected random graph on 60 nodes
        let mut b = GraphBuilder::new();
        for v in 1..60u32 {
            let u = grng.random_range(0..v);
            b.add_edge(u, v);
        }
        for _ in 0..120 {
            let u = grng.random_range(0..60u32);
            let v = grng.random_range(0..60u32);
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let expect = slem_dense(&g);
        let sop = SymmetricWalkOp::new(&g);
        let basis = vec![sop.top_eigenvector()];
        let defl = DeflatedOp::new(sop, &basis);
        let mut rng = StdRng::seed_from_u64(8);
        let r = lanczos_extreme(&defl, LanczosOptions::default(), &mut rng);
        let mu = r.top.max(-r.bottom);
        assert_close(mu, expect, 1e-7);
    }

    #[test]
    fn bipartite_bottom_is_minus_one() {
        // K_{3,3}: spectrum {1, 0, …, -1}
        let g = {
            let mut b = GraphBuilder::new();
            for u in 0..3u32 {
                for v in 0..3u32 {
                    b.add_edge(u, 3 + v);
                }
            }
            b.build()
        };
        let op = SymmetricWalkOp::new(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let r = lanczos_extreme(&op, LanczosOptions::default(), &mut rng);
        assert_close(r.bottom, -1.0, 1e-9);
    }

    #[test]
    fn max_iter_cap_reports_unconverged_or_exact() {
        let g = tests_support::big_cycle(101);
        let sop = SymmetricWalkOp::new(&g);
        let basis = vec![sop.top_eigenvector()];
        let defl = DeflatedOp::new(sop, &basis);
        let mut rng = StdRng::seed_from_u64(5);
        let opts = LanczosOptions {
            max_iter: 8,
            tol: 1e-12,
            check_every: 4,
        };
        let r = lanczos_extreme(&defl, opts, &mut rng);
        assert!(r.iterations <= 8);
        // with such a tiny basis the result is a valid *bound*:
        // Ritz values are inside the true spectrum
        assert!(r.top <= 1.0 + 1e-9);
        assert!(r.bottom >= -1.0 - 1e-9);
    }

    #[test]
    fn topk_matches_jacobi_on_dense() {
        let n = 30;
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                let v = (((i * 13 + j * 7 + 1) % 17) as f64) / 17.0 - 0.5;
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        let (jv, _) = jacobi_eigen(&m);
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = m.get(i, j);
            }
        }
        let op = DenseOp { data, n };
        let mut rng = StdRng::seed_from_u64(21);
        let r = lanczos_topk(
            &op,
            4,
            LanczosOptions {
                max_iter: n,
                ..Default::default()
            },
            &mut rng,
        );
        for (&rv, &jvj) in r.values.iter().zip(&jv).take(4) {
            assert_close(rv, jvj, 1e-6);
        }
    }

    #[test]
    fn topk_vectors_are_eigenvectors() {
        let g = GraphBuilder::from_edges([
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (0, 5),
        ])
        .build();
        let op = SymmetricWalkOp::new(&g);
        let mut rng = StdRng::seed_from_u64(22);
        let r = lanczos_topk(&op, 3, LanczosOptions::default(), &mut rng);
        for (vec_j, &val_j) in r.vectors.iter().zip(&r.values).take(3) {
            let av = op.apply_vec(vec_j);
            for (&avi, &vji) in av.iter().zip(vec_j) {
                assert_close(avi, val_j * vji, 1e-6);
            }
        }
        // orthonormal
        for a in 0..3 {
            for b in (a + 1)..3 {
                assert_close(crate::vecops::dot(&r.vectors[a], &r.vectors[b]), 0.0, 1e-7);
            }
        }
    }

    #[test]
    fn topk_top_value_is_one_for_walk() {
        let g = tests_support::big_cycle(31);
        let op = SymmetricWalkOp::new(&g);
        let mut rng = StdRng::seed_from_u64(23);
        let r = lanczos_topk(&op, 2, LanczosOptions::default(), &mut rng);
        assert_close(r.values[0], 1.0, 1e-8);
        assert_close(r.values[1], (2.0 * std::f64::consts::PI / 31.0).cos(), 1e-7);
    }

    fn f32_sym_op(g: &socmix_graph::Graph) -> crate::op::SymmetricWalkOpF32<'_> {
        use crate::kernel::KernelConfig;
        use socmix_par::Pool;
        crate::op::SymmetricWalkOpF32::with_kernel(g, Pool::serial(), KernelConfig::mixed_f32())
    }

    #[test]
    fn mixed_deflated_odd_cycle_closed_form() {
        let n = 9;
        let g = tests_support::big_cycle(n);
        let sop = SymmetricWalkOp::new(&g);
        let basis = vec![sop.top_eigenvector()];
        let defl = DeflatedOp::new(sop, &basis);
        let sop32 = f32_sym_op(&g);
        let basis32 = vec![sop32.top_eigenvector32()];
        let defl32 = crate::op::DeflatedOpF32::new(sop32, &basis32);
        let mut rng = StdRng::seed_from_u64(30);
        let r = lanczos_extreme_mixed(&defl, &defl32, LanczosOptions::default(), &mut rng);
        let mu = r.top.max(-r.bottom);
        assert_close(mu, (std::f64::consts::PI / n as f64).cos(), 1e-7);
        assert!(
            r.converged,
            "residuals {:e}/{:e}",
            r.top_residual, r.bottom_residual
        );
    }

    #[test]
    fn mixed_matches_dense_slem_on_random_graph() {
        use rand::Rng;
        let mut grng = StdRng::seed_from_u64(31);
        let mut b = GraphBuilder::new();
        for v in 1..60u32 {
            let u = grng.random_range(0..v);
            b.add_edge(u, v);
        }
        for _ in 0..120 {
            let u = grng.random_range(0..60u32);
            let v = grng.random_range(0..60u32);
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let expect = slem_dense(&g);
        let sop = SymmetricWalkOp::new(&g);
        let basis = vec![sop.top_eigenvector()];
        let defl = DeflatedOp::new(sop, &basis);
        let sop32 = f32_sym_op(&g);
        let basis32 = vec![sop32.top_eigenvector32()];
        let defl32 = crate::op::DeflatedOpF32::new(sop32, &basis32);
        let mut rng = StdRng::seed_from_u64(32);
        let r = lanczos_extreme_mixed(&defl, &defl32, LanczosOptions::default(), &mut rng);
        let mu = r.top.max(-r.bottom);
        assert_close(mu, expect, 1e-6);
    }

    #[test]
    fn mixed_bipartite_bottom_is_minus_one() {
        let g = {
            let mut b = GraphBuilder::new();
            for u in 0..3u32 {
                for v in 0..3u32 {
                    b.add_edge(u, 3 + v);
                }
            }
            b.build()
        };
        let op = SymmetricWalkOp::new(&g);
        let op32 = f32_sym_op(&g);
        let mut rng = StdRng::seed_from_u64(33);
        let r = lanczos_extreme_mixed(&op, &op32, LanczosOptions::default(), &mut rng);
        assert_close(r.bottom, -1.0, 1e-6);
        assert_close(r.top, 1.0, 1e-6);
    }

    #[test]
    fn one_node_graph_trivial() {
        // operator on a single node with a self-structure: dimension 1
        let op = DenseOp {
            data: vec![0.42],
            n: 1,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let r = lanczos_extreme(&op, LanczosOptions::default(), &mut rng);
        assert_close(r.top, 0.42, 1e-12);
        assert_close(r.bottom, 0.42, 1e-12);
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use socmix_graph::{Graph, GraphBuilder};

    pub fn big_cycle(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..n as u32 {
            b.add_edge(i, (i + 1) % n as u32);
        }
        b.build()
    }
}
