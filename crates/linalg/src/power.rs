//! Power iteration with Rayleigh quotients.
//!
//! The second, independent SLEM method: on the deflated symmetric walk
//! operator the dominant eigenvalue *in modulus* is exactly
//! `µ = max(λ₂, −λₙ)`, so plain power iteration recovers the SLEM
//! directly. Needs only O(n) memory — the fallback for graphs whose
//! Lanczos basis would not fit — and serves as a cross-check on the
//! Lanczos path in tests.
//!
//! Convergence is geometric with ratio `|λ_second|/|λ_dominant|`;
//! when λ₂ ≈ −λₙ (near-bipartite graphs) the *eigenvector* stalls,
//! but the Rayleigh-quotient *modulus* still converges to µ, which is
//! all the mixing bounds need.

use crate::op::{LinearOp, LinearOpF32};
use crate::vecops::{
    axpy, dot, dot32, norm2, norm2_32, normalize, normalize32, resid_norm32, scale32,
};
use rand::Rng;
use socmix_obs::{obs_debug, Counter, Histogram, Span};

static RUNS: Counter = Counter::new("linalg.power.runs");
static ITERS: Counter = Counter::new("linalg.power.iters");
/// Wall time per power-iteration run (scalar and mixed drivers); on a
/// trace timeline one span per SLEM solve.
static RUN_NS: Histogram = Histogram::new("linalg.power.run_ns");
/// Times the ±pair degeneracy forced the two-step Rayleigh fallback in
/// [`spectral_radius_in_complement`].
static TWO_STEP_FALLBACKS: Counter = Counter::new("linalg.power.two_step_fallback");
/// Mixed-precision driver invocations.
static MIXED_RUNS: Counter = Counter::new("linalg.power.mixed_runs");
/// Iterations the mixed driver spent in the cheap f32 phase.
static MIXED_F32_ITERS: Counter = Counter::new("linalg.power.f32_iters");

/// Emit a residual-trajectory event every this many iterations.
const TRACE_EVERY: usize = 100;

/// Residual level below which single precision cannot reliably improve
/// the iterate: one ulp of an O(1) eigenvalue in f32 is ≈1.2e-7, and
/// the gathered matvec noise sits a little above that.
const F32_RESIDUAL_FLOOR: f64 = 1e-6;
/// The f32 phase also hands over when the residual is already inside
/// f32 noise territory (below this ceiling) and has stopped improving
/// — iterating in f32 past its own floor is wasted work.
const F32_STALL_CEILING: f64 = 1e-4;
/// "Stopped improving" = no relative improvement better than this
/// factor for [`F32_STALL_WINDOW`] consecutive iterations.
const F32_STALL_IMPROVEMENT: f64 = 0.995;
const F32_STALL_WINDOW: usize = 12;
/// While the f32 residual is clearly above [`F32_STALL_CEILING`] the
/// cheap phase measures it only every this many iterations: the check
/// costs several O(n) passes on top of the gather, and far from
/// convergence the residual cannot cross the exit thresholds between
/// checks by more than the geometric factor a few extra iterations
/// cost. Once inside noise territory the check reverts to every
/// iteration so the stall window keeps its per-iteration meaning.
const F32_CHECK_EVERY: usize = 10;

/// Options for [`power_iteration`].
#[derive(Debug, Clone, Copy)]
pub struct PowerOptions {
    /// Maximum iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the residual `‖Op·v − λv‖`.
    pub tol: f64,
}

impl Default for PowerOptions {
    fn default() -> Self {
        PowerOptions {
            max_iter: 5_000,
            tol: 1e-9,
        }
    }
}

/// Result of [`power_iteration`].
#[derive(Debug, Clone)]
pub struct PowerResult {
    /// Rayleigh quotient at the final iterate — the dominant
    /// eigenvalue (signed).
    pub eigenvalue: f64,
    /// Final unit iterate (the eigenvector estimate).
    pub vector: Vec<f64>,
    /// Final residual `‖Op·v − λv‖`.
    pub residual: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the residual met the tolerance.
    pub converged: bool,
}

/// Power iteration for the dominant (largest-modulus) eigenpair of a
/// symmetric operator.
///
/// When the dominant eigenvalue is negative the iterate alternates
/// sign; the Rayleigh quotient handles that transparently. When the
/// top two eigenvalues have equal modulus and opposite signs the
/// vector cycles between their combination — the reported residual
/// stays large but `|eigenvalue|` still approaches the common
/// modulus; callers interested only in µ should read
/// `eigenvalue.abs()` (see [`spectral_radius_in_complement`] for the
/// aggregated helper).
pub fn power_iteration<Op: LinearOp, R: Rng + ?Sized>(
    op: &Op,
    opts: PowerOptions,
    rng: &mut R,
) -> PowerResult {
    let n = op.dim();
    assert!(n > 0, "operator must be non-empty");
    RUNS.incr();
    let _span = Span::start(&RUN_NS);
    let mut v: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    // fold into the operator's range (projects when Op is deflated)
    let w = op.apply_vec(&v);
    if norm2(&w) > 1e-12 {
        v = w;
    }
    if normalize(&mut v) == 0.0 {
        return PowerResult {
            eigenvalue: 0.0,
            vector: v,
            residual: 0.0,
            iterations: 0,
            converged: true,
        };
    }
    let mut lambda = 0.0;
    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    let mut w = vec![0.0; n];
    // reusable residual buffer: the loop performs no heap allocation
    let mut resid = vec![0.0; n];
    for it in 0..opts.max_iter {
        iterations = it + 1;
        ITERS.incr();
        op.apply(&v, &mut w);
        lambda = dot(&v, &w);
        // residual ‖w − λv‖
        resid.copy_from_slice(&w);
        axpy(-lambda, &v, &mut resid);
        residual = norm2(&resid);
        if iterations % TRACE_EVERY == 0 {
            obs_debug!(
                "linalg.power",
                "iter {iterations}: lambda {lambda:.8} residual {residual:.3e}"
            );
        }
        if residual < opts.tol {
            break;
        }
        if normalize(&mut w) == 0.0 {
            // iterate collapsed: eigenvalue 0 on this component
            lambda = 0.0;
            residual = 0.0;
            break;
        }
        std::mem::swap(&mut v, &mut w);
    }
    PowerResult {
        eigenvalue: lambda,
        vector: v,
        residual,
        iterations,
        converged: residual < opts.tol,
    }
}

/// Mixed-precision power iteration: cheap f32 iterations followed by
/// f64 residual-correction iterations and a final f64 Rayleigh polish.
///
/// `op64` and `op32` must represent the *same* operator at the two
/// precisions (same dimension, entries within f32 rounding). The f32
/// phase runs until its residual reaches the larger of `opts.tol` and
/// the f32 noise floor (≈1e-6), or visibly stalls inside f32 noise
/// territory, or the budget runs out; the iterate is then promoted to
/// f64 and iterated further under the exact `opts.tol` criterion.
///
/// The final f64 application that measures the polished Rayleigh
/// quotient and residual is a *measurement*, not an iteration, and is
/// not charged against `opts.max_iter`; `iterations` counts f32 and
/// f64 iterations together and never exceeds the budget. Because the
/// Rayleigh quotient is quadratically accurate in the iterate error,
/// an f32-accurate vector (error ≈1e-7) already pins the eigenvalue
/// to ≈1e-13 — the polish makes that accuracy, and the honesty of
/// `residual`/`converged`, independent of the f32 phase.
pub fn power_iteration_mixed<Op64, Op32, R>(
    op64: &Op64,
    op32: &Op32,
    opts: PowerOptions,
    rng: &mut R,
) -> PowerResult
where
    Op64: LinearOp,
    Op32: LinearOpF32,
    R: Rng + ?Sized,
{
    let n = op64.dim();
    assert!(n > 0, "operator must be non-empty");
    assert_eq!(op32.dim(), n, "f32/f64 operator dimension mismatch");
    RUNS.incr();
    MIXED_RUNS.incr();
    let _span = Span::start(&RUN_NS);
    // --- Phase A: f32 iterations. Same start-up as the f64 driver:
    // draw, fold into the operator's range, normalize-or-bail.
    let mut v32: Vec<f32> = (0..n).map(|_| (rng.random::<f64>() - 0.5) as f32).collect();
    let mut w32 = vec![0.0f32; n];
    op32.apply32(&v32, &mut w32);
    if norm2_32(&w32) > 1e-6 {
        std::mem::swap(&mut v32, &mut w32);
    }
    if normalize32(&mut v32) == 0.0 {
        return PowerResult {
            eigenvalue: 0.0,
            vector: v32.iter().map(|&x| f64::from(x)).collect(),
            residual: 0.0,
            iterations: 0,
            converged: true,
        };
    }
    let f32_tol = opts.tol.max(F32_RESIDUAL_FLOOR);
    let mut iterations = 0;
    let mut best_residual = f64::INFINITY;
    let mut stalled_for = 0usize;
    let mut check_every = F32_CHECK_EVERY;
    // ‖v32‖ is tracked, not enforced: the scale pass that would keep
    // the iterate unit costs as much as the matvec's own pre-scale,
    // so the iterate is only rescaled once its norm leaves [1/4, 4)
    // (rare for walk operators, whose spectrum lies in [−1, 1]); the
    // measurements below divide the tracked drift out instead.
    let mut v_norm = 1.0f64;
    while iterations < opts.max_iter {
        iterations += 1;
        ITERS.incr();
        MIXED_F32_ITERS.incr();
        op32.apply32(&v32, &mut w32);
        let w_norm = norm2_32(&w32);
        if w_norm == 0.0 {
            // iterate collapsed in f32; promote and let f64 decide
            break;
        }
        // the budget's final iterate is always measured so the
        // reported residual is never more than `check_every` stale
        if iterations % check_every == 0 || iterations == opts.max_iter {
            // Rayleigh data for the *unit* iterate v̂ = v/‖v‖: with
            // w = Op·v this is λ = v·w/‖v‖² and ‖Op·v̂ − λv̂‖ =
            // ‖w − λv‖/‖v‖, one fused pass each.
            let lambda32 = dot32(&v32, &w32) / (v_norm * v_norm);
            let residual32 = resid_norm32(&w32, &v32, lambda32) / v_norm;
            if residual32 < best_residual * F32_STALL_IMPROVEMENT {
                best_residual = residual32;
                stalled_for = 0;
            } else {
                stalled_for += 1;
            }
            if iterations % TRACE_EVERY == 0 {
                obs_debug!(
                    "linalg.power",
                    "mixed iter {iterations} (f32): lambda {lambda32:.8} residual {residual32:.3e}"
                );
            }
            if residual32 < f32_tol {
                break;
            }
            // Stall only counts inside f32 noise territory: a slowly
            // but genuinely converging residual at 1e-2 should stay on
            // the cheap path — that is the whole point of the f32
            // phase. Near the floor every iterate is measured again.
            if residual32 < F32_STALL_CEILING {
                check_every = 1;
                if stalled_for >= F32_STALL_WINDOW {
                    obs_debug!(
                        "linalg.power",
                        "mixed iter {iterations}: f32 residual stalled at {residual32:.3e}; \
                         promoting"
                    );
                    break;
                }
            }
        }
        v_norm = if (0.25..4.0).contains(&w_norm) {
            w_norm
        } else {
            scale32(&mut w32, (1.0 / w_norm) as f32);
            1.0
        };
        std::mem::swap(&mut v32, &mut w32);
    }
    // --- Phase B: promote and correct in f64. ---
    let mut v: Vec<f64> = v32.iter().map(|&x| f64::from(x)).collect();
    normalize(&mut v); // divides out the tracked phase-A norm drift
    let mut lambda;
    let mut residual;
    let mut w = vec![0.0; n];
    let mut resid = vec![0.0; n];
    loop {
        // First pass is the uncounted Rayleigh polish / measurement;
        // subsequent passes are counted f64 correction iterations.
        op64.apply(&v, &mut w);
        lambda = dot(&v, &w);
        resid.copy_from_slice(&w);
        axpy(-lambda, &v, &mut resid);
        residual = norm2(&resid);
        if residual < opts.tol || iterations >= opts.max_iter {
            break;
        }
        iterations += 1;
        ITERS.incr();
        if iterations % TRACE_EVERY == 0 {
            obs_debug!(
                "linalg.power",
                "mixed iter {iterations} (f64): lambda {lambda:.8} residual {residual:.3e}"
            );
        }
        if normalize(&mut w) == 0.0 {
            lambda = 0.0;
            residual = 0.0;
            break;
        }
        std::mem::swap(&mut v, &mut w);
    }
    PowerResult {
        eigenvalue: lambda,
        vector: v,
        residual,
        iterations,
        converged: residual < opts.tol,
    }
}

/// Result of [`spectral_radius_in_complement`]: the modulus estimate
/// together with the provenance callers need to report honestly.
#[derive(Debug, Clone, Copy)]
pub struct SpectralRadius {
    /// Largest |eigenvalue| estimate.
    pub radius: f64,
    /// Power-iteration steps actually performed (not the budget).
    pub iterations: usize,
    /// Whether the estimate is backed by a residual below tolerance —
    /// either the power iterate itself, or, in the ±pair degenerate
    /// case, the two-step residual `‖Op²v − λ²v‖`.
    pub converged: bool,
}

/// Estimates the spectral radius of `op` (largest |eigenvalue|),
/// robust to the ±pair degeneracy: runs power iteration, and if the
/// residual stalls (the ± case), extracts the modulus from the
/// two-step Rayleigh quotient `√(v·Op²v)`, which converges even then.
pub fn spectral_radius_in_complement<Op: LinearOp, R: Rng + ?Sized>(
    op: &Op,
    opts: PowerOptions,
    rng: &mut R,
) -> SpectralRadius {
    let r = power_iteration(op, opts, rng);
    radius_from_result(op, opts, r)
}

/// Mixed-precision counterpart of [`spectral_radius_in_complement`]:
/// runs [`power_iteration_mixed`] and applies the same f64 two-step
/// Rayleigh fallback when the one-step residual stalls on a ±pair.
pub fn spectral_radius_in_complement_mixed<Op64, Op32, R>(
    op64: &Op64,
    op32: &Op32,
    opts: PowerOptions,
    rng: &mut R,
) -> SpectralRadius
where
    Op64: LinearOp,
    Op32: LinearOpF32,
    R: Rng + ?Sized,
{
    let r = power_iteration_mixed(op64, op32, opts, rng);
    radius_from_result(op64, opts, r)
}

/// Shared tail of the radius estimators: accept a converged one-step
/// result, otherwise fall back to the two-step Rayleigh quotient
/// (always in f64 — the fallback is two applications, not a loop).
fn radius_from_result<Op: LinearOp>(op: &Op, opts: PowerOptions, r: PowerResult) -> SpectralRadius {
    if r.converged {
        return SpectralRadius {
            radius: r.eigenvalue.abs(),
            iterations: r.iterations,
            converged: true,
        };
    }
    TWO_STEP_FALLBACKS.incr();
    obs_debug!(
        "linalg.power",
        "one-step residual stalled after {} iters; trying two-step Rayleigh fallback",
        r.iterations
    );
    // ± degeneracy: λ² from v·Op²v with the final iterate. The final
    // iterate is an (approximate) combination of the ± pair, which is
    // an eigenvector of Op², so convergence is judged on the two-step
    // residual ‖Op²v − λ²v‖ rather than the stalled one-step one.
    let w = op.apply_vec(&r.vector);
    let mut w2 = op.apply_vec(&w);
    let lam2 = dot(&r.vector, &w2).max(0.0);
    axpy(-lam2, &r.vector, &mut w2);
    let two_step_residual = norm2(&w2);
    SpectralRadius {
        radius: lam2.sqrt().max(r.eigenvalue.abs()),
        iterations: r.iterations,
        converged: two_step_residual < opts.tol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::slem_dense;
    use crate::op::{DeflatedOp, DenseOp, SymmetricWalkOp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socmix_graph::GraphBuilder;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn dominant_positive_eigenvalue() {
        let op = DenseOp {
            data: vec![2.0, 1.0, 1.0, 2.0],
            n: 2,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let r = power_iteration(&op, PowerOptions::default(), &mut rng);
        assert!(r.converged);
        assert_close(r.eigenvalue, 3.0, 1e-7);
    }

    #[test]
    fn dominant_negative_eigenvalue() {
        // diag(-3, 1): dominant in modulus is -3
        let op = DenseOp {
            data: vec![-3.0, 0.0, 0.0, 1.0],
            n: 2,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let r = power_iteration(&op, PowerOptions::default(), &mut rng);
        assert!(r.converged);
        assert_close(r.eigenvalue, -3.0, 1e-7);
    }

    #[test]
    fn walk_top_eigenvalue_is_one() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]).build();
        let op = SymmetricWalkOp::new(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let r = power_iteration(&op, PowerOptions::default(), &mut rng);
        assert_close(r.eigenvalue, 1.0, 1e-7);
    }

    #[test]
    fn deflated_power_matches_dense_slem() {
        let g = GraphBuilder::from_edges([
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (1, 4),
        ])
        .build();
        let expect = slem_dense(&g);
        let sop = SymmetricWalkOp::new(&g);
        let basis = vec![sop.top_eigenvector()];
        let defl = DeflatedOp::new(sop, &basis);
        let mut rng = StdRng::seed_from_u64(3);
        let mu = spectral_radius_in_complement(&defl, PowerOptions::default(), &mut rng);
        assert_close(mu.radius, expect, 1e-6);
        assert!(mu.converged);
        assert!(mu.iterations > 0 && mu.iterations < PowerOptions::default().max_iter);
    }

    #[test]
    fn pm_degenerate_pair_still_gives_modulus() {
        // eigenvalues {+2, -2}: vector never settles, modulus must
        let op = DenseOp {
            data: vec![0.0, 2.0, 2.0, 0.0],
            n: 2,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let opts = PowerOptions {
            max_iter: 200,
            tol: 1e-12,
        };
        let mu = spectral_radius_in_complement(&op, opts, &mut rng);
        assert_close(mu.radius, 2.0, 1e-8);
        // the one-step iterate never settles, but the two-step
        // residual does, so the estimate still reports converged
        assert!(mu.converged);
        assert_eq!(mu.iterations, opts.max_iter);
    }

    #[test]
    fn bipartite_slem_via_power() {
        // star K_{1,4}: spectrum {1, 0, 0, 0, -1} → µ = 1
        let g = GraphBuilder::from_edges([(0, 1), (0, 2), (0, 3), (0, 4)]).build();
        let sop = SymmetricWalkOp::new(&g);
        let basis = vec![sop.top_eigenvector()];
        let defl = DeflatedOp::new(sop, &basis);
        let mut rng = StdRng::seed_from_u64(5);
        let mu = spectral_radius_in_complement(&defl, PowerOptions::default(), &mut rng);
        assert_close(mu.radius, 1.0, 1e-6);
        assert!(mu.converged);
    }

    #[test]
    fn zero_operator() {
        let op = DenseOp {
            data: vec![0.0; 9],
            n: 3,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let r = power_iteration(&op, PowerOptions::default(), &mut rng);
        assert_eq!(r.eigenvalue, 0.0);
        assert!(r.converged);
    }

    fn deflated_pair(
        g: &socmix_graph::Graph,
    ) -> (
        DeflatedOp<'_, SymmetricWalkOp<'_>>,
        crate::op::DeflatedOpF32<'_, crate::op::SymmetricWalkOpF32<'_>>,
    ) {
        use crate::kernel::KernelConfig;
        use crate::op::{DeflatedOpF32, SymmetricWalkOpF32};
        use socmix_par::Pool;
        let sop = SymmetricWalkOp::new(g);
        let basis = vec![sop.top_eigenvector()];
        let sop32 = SymmetricWalkOpF32::with_kernel(g, Pool::serial(), KernelConfig::mixed_f32());
        let basis32 = vec![sop32.top_eigenvector32()];
        (
            DeflatedOp::new(sop, Box::leak(Box::new(basis))),
            DeflatedOpF32::new(sop32, Box::leak(Box::new(basis32))),
        )
    }

    #[test]
    fn mixed_power_matches_dense_slem() {
        let g = GraphBuilder::from_edges([
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (1, 4),
        ])
        .build();
        let expect = slem_dense(&g);
        let (defl, defl32) = deflated_pair(&g);
        let mut rng = StdRng::seed_from_u64(8);
        let mu =
            spectral_radius_in_complement_mixed(&defl, &defl32, PowerOptions::default(), &mut rng);
        assert_close(mu.radius, expect, 1e-6);
        assert!(mu.converged);
        assert!(mu.iterations > 0 && mu.iterations < PowerOptions::default().max_iter);
    }

    #[test]
    fn mixed_power_bipartite_star() {
        let g = GraphBuilder::from_edges([(0, 1), (0, 2), (0, 3), (0, 4)]).build();
        let (defl, defl32) = deflated_pair(&g);
        let mut rng = StdRng::seed_from_u64(9);
        let mu =
            spectral_radius_in_complement_mixed(&defl, &defl32, PowerOptions::default(), &mut rng);
        assert_close(mu.radius, 1.0, 1e-6);
        assert!(mu.converged);
    }

    #[test]
    fn mixed_budget_respected() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]).build();
        let (defl, defl32) = deflated_pair(&g);
        let mut rng = StdRng::seed_from_u64(10);
        let opts = PowerOptions {
            max_iter: 1,
            tol: 1e-15,
        };
        let r = power_iteration_mixed(&defl, &defl32, opts, &mut rng);
        assert_eq!(r.iterations, 1);
        assert!(!r.converged);
        // the uncounted polish still reports an honest f64 residual
        assert!(r.residual.is_finite() && r.residual > 0.0);
    }

    #[test]
    fn iteration_budget_respected() {
        let op = DenseOp {
            data: vec![1.0, 0.999, 0.999, 1.0],
            n: 2,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let opts = PowerOptions {
            max_iter: 3,
            tol: 1e-15,
        };
        let r = power_iteration(&op, opts, &mut rng);
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }
}
