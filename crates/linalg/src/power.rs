//! Power iteration with Rayleigh quotients.
//!
//! The second, independent SLEM method: on the deflated symmetric walk
//! operator the dominant eigenvalue *in modulus* is exactly
//! `µ = max(λ₂, −λₙ)`, so plain power iteration recovers the SLEM
//! directly. Needs only O(n) memory — the fallback for graphs whose
//! Lanczos basis would not fit — and serves as a cross-check on the
//! Lanczos path in tests.
//!
//! Convergence is geometric with ratio `|λ_second|/|λ_dominant|`;
//! when λ₂ ≈ −λₙ (near-bipartite graphs) the *eigenvector* stalls,
//! but the Rayleigh-quotient *modulus* still converges to µ, which is
//! all the mixing bounds need.

use crate::op::LinearOp;
use crate::vecops::{axpy, dot, norm2, normalize};
use rand::Rng;
use socmix_obs::{obs_debug, Counter};

static RUNS: Counter = Counter::new("linalg.power.runs");
static ITERS: Counter = Counter::new("linalg.power.iters");
/// Times the ±pair degeneracy forced the two-step Rayleigh fallback in
/// [`spectral_radius_in_complement`].
static TWO_STEP_FALLBACKS: Counter = Counter::new("linalg.power.two_step_fallback");

/// Emit a residual-trajectory event every this many iterations.
const TRACE_EVERY: usize = 100;

/// Options for [`power_iteration`].
#[derive(Debug, Clone, Copy)]
pub struct PowerOptions {
    /// Maximum iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the residual `‖Op·v − λv‖`.
    pub tol: f64,
}

impl Default for PowerOptions {
    fn default() -> Self {
        PowerOptions {
            max_iter: 5_000,
            tol: 1e-9,
        }
    }
}

/// Result of [`power_iteration`].
#[derive(Debug, Clone)]
pub struct PowerResult {
    /// Rayleigh quotient at the final iterate — the dominant
    /// eigenvalue (signed).
    pub eigenvalue: f64,
    /// Final unit iterate (the eigenvector estimate).
    pub vector: Vec<f64>,
    /// Final residual `‖Op·v − λv‖`.
    pub residual: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the residual met the tolerance.
    pub converged: bool,
}

/// Power iteration for the dominant (largest-modulus) eigenpair of a
/// symmetric operator.
///
/// When the dominant eigenvalue is negative the iterate alternates
/// sign; the Rayleigh quotient handles that transparently. When the
/// top two eigenvalues have equal modulus and opposite signs the
/// vector cycles between their combination — the reported residual
/// stays large but `|eigenvalue|` still approaches the common
/// modulus; callers interested only in µ should read
/// `eigenvalue.abs()` (see [`spectral_radius_in_complement`] for the
/// aggregated helper).
pub fn power_iteration<Op: LinearOp, R: Rng + ?Sized>(
    op: &Op,
    opts: PowerOptions,
    rng: &mut R,
) -> PowerResult {
    let n = op.dim();
    assert!(n > 0, "operator must be non-empty");
    RUNS.incr();
    let mut v: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    // fold into the operator's range (projects when Op is deflated)
    let w = op.apply_vec(&v);
    if norm2(&w) > 1e-12 {
        v = w;
    }
    if normalize(&mut v) == 0.0 {
        return PowerResult {
            eigenvalue: 0.0,
            vector: v,
            residual: 0.0,
            iterations: 0,
            converged: true,
        };
    }
    let mut lambda = 0.0;
    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    let mut w = vec![0.0; n];
    // reusable residual buffer: the loop performs no heap allocation
    let mut resid = vec![0.0; n];
    for it in 0..opts.max_iter {
        iterations = it + 1;
        ITERS.incr();
        op.apply(&v, &mut w);
        lambda = dot(&v, &w);
        // residual ‖w − λv‖
        resid.copy_from_slice(&w);
        axpy(-lambda, &v, &mut resid);
        residual = norm2(&resid);
        if iterations % TRACE_EVERY == 0 {
            obs_debug!(
                "linalg.power",
                "iter {iterations}: lambda {lambda:.8} residual {residual:.3e}"
            );
        }
        if residual < opts.tol {
            break;
        }
        if normalize(&mut w) == 0.0 {
            // iterate collapsed: eigenvalue 0 on this component
            lambda = 0.0;
            residual = 0.0;
            break;
        }
        std::mem::swap(&mut v, &mut w);
    }
    PowerResult {
        eigenvalue: lambda,
        vector: v,
        residual,
        iterations,
        converged: residual < opts.tol,
    }
}

/// Result of [`spectral_radius_in_complement`]: the modulus estimate
/// together with the provenance callers need to report honestly.
#[derive(Debug, Clone, Copy)]
pub struct SpectralRadius {
    /// Largest |eigenvalue| estimate.
    pub radius: f64,
    /// Power-iteration steps actually performed (not the budget).
    pub iterations: usize,
    /// Whether the estimate is backed by a residual below tolerance —
    /// either the power iterate itself, or, in the ±pair degenerate
    /// case, the two-step residual `‖Op²v − λ²v‖`.
    pub converged: bool,
}

/// Estimates the spectral radius of `op` (largest |eigenvalue|),
/// robust to the ±pair degeneracy: runs power iteration, and if the
/// residual stalls (the ± case), extracts the modulus from the
/// two-step Rayleigh quotient `√(v·Op²v)`, which converges even then.
pub fn spectral_radius_in_complement<Op: LinearOp, R: Rng + ?Sized>(
    op: &Op,
    opts: PowerOptions,
    rng: &mut R,
) -> SpectralRadius {
    let r = power_iteration(op, opts, rng);
    if r.converged {
        return SpectralRadius {
            radius: r.eigenvalue.abs(),
            iterations: r.iterations,
            converged: true,
        };
    }
    TWO_STEP_FALLBACKS.incr();
    obs_debug!(
        "linalg.power",
        "one-step residual stalled after {} iters; trying two-step Rayleigh fallback",
        r.iterations
    );
    // ± degeneracy: λ² from v·Op²v with the final iterate. The final
    // iterate is an (approximate) combination of the ± pair, which is
    // an eigenvector of Op², so convergence is judged on the two-step
    // residual ‖Op²v − λ²v‖ rather than the stalled one-step one.
    let w = op.apply_vec(&r.vector);
    let mut w2 = op.apply_vec(&w);
    let lam2 = dot(&r.vector, &w2).max(0.0);
    axpy(-lam2, &r.vector, &mut w2);
    let two_step_residual = norm2(&w2);
    SpectralRadius {
        radius: lam2.sqrt().max(r.eigenvalue.abs()),
        iterations: r.iterations,
        converged: two_step_residual < opts.tol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::slem_dense;
    use crate::op::{DeflatedOp, DenseOp, SymmetricWalkOp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socmix_graph::GraphBuilder;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn dominant_positive_eigenvalue() {
        let op = DenseOp {
            data: vec![2.0, 1.0, 1.0, 2.0],
            n: 2,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let r = power_iteration(&op, PowerOptions::default(), &mut rng);
        assert!(r.converged);
        assert_close(r.eigenvalue, 3.0, 1e-7);
    }

    #[test]
    fn dominant_negative_eigenvalue() {
        // diag(-3, 1): dominant in modulus is -3
        let op = DenseOp {
            data: vec![-3.0, 0.0, 0.0, 1.0],
            n: 2,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let r = power_iteration(&op, PowerOptions::default(), &mut rng);
        assert!(r.converged);
        assert_close(r.eigenvalue, -3.0, 1e-7);
    }

    #[test]
    fn walk_top_eigenvalue_is_one() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]).build();
        let op = SymmetricWalkOp::new(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let r = power_iteration(&op, PowerOptions::default(), &mut rng);
        assert_close(r.eigenvalue, 1.0, 1e-7);
    }

    #[test]
    fn deflated_power_matches_dense_slem() {
        let g = GraphBuilder::from_edges([
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (1, 4),
        ])
        .build();
        let expect = slem_dense(&g);
        let sop = SymmetricWalkOp::new(&g);
        let basis = vec![sop.top_eigenvector()];
        let defl = DeflatedOp::new(sop, &basis);
        let mut rng = StdRng::seed_from_u64(3);
        let mu = spectral_radius_in_complement(&defl, PowerOptions::default(), &mut rng);
        assert_close(mu.radius, expect, 1e-6);
        assert!(mu.converged);
        assert!(mu.iterations > 0 && mu.iterations < PowerOptions::default().max_iter);
    }

    #[test]
    fn pm_degenerate_pair_still_gives_modulus() {
        // eigenvalues {+2, -2}: vector never settles, modulus must
        let op = DenseOp {
            data: vec![0.0, 2.0, 2.0, 0.0],
            n: 2,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let opts = PowerOptions {
            max_iter: 200,
            tol: 1e-12,
        };
        let mu = spectral_radius_in_complement(&op, opts, &mut rng);
        assert_close(mu.radius, 2.0, 1e-8);
        // the one-step iterate never settles, but the two-step
        // residual does, so the estimate still reports converged
        assert!(mu.converged);
        assert_eq!(mu.iterations, opts.max_iter);
    }

    #[test]
    fn bipartite_slem_via_power() {
        // star K_{1,4}: spectrum {1, 0, 0, 0, -1} → µ = 1
        let g = GraphBuilder::from_edges([(0, 1), (0, 2), (0, 3), (0, 4)]).build();
        let sop = SymmetricWalkOp::new(&g);
        let basis = vec![sop.top_eigenvector()];
        let defl = DeflatedOp::new(sop, &basis);
        let mut rng = StdRng::seed_from_u64(5);
        let mu = spectral_radius_in_complement(&defl, PowerOptions::default(), &mut rng);
        assert_close(mu.radius, 1.0, 1e-6);
        assert!(mu.converged);
    }

    #[test]
    fn zero_operator() {
        let op = DenseOp {
            data: vec![0.0; 9],
            n: 3,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let r = power_iteration(&op, PowerOptions::default(), &mut rng);
        assert_eq!(r.eigenvalue, 0.0);
        assert!(r.converged);
    }

    #[test]
    fn iteration_budget_respected() {
        let op = DenseOp {
            data: vec![1.0, 0.999, 0.999, 1.0],
            n: 2,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let opts = PowerOptions {
            max_iter: 3,
            tol: 1e-15,
        };
        let r = power_iteration(&op, opts, &mut rng);
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }
}
