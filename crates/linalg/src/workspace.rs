//! Reusable per-thread scratch buffers for operator hot paths.
//!
//! Every iterative driver in this workspace (Lanczos, power iteration,
//! CG, the batch evolver) reduces to thousands of repeated
//! `LinearOp::apply` calls. The operators need small amounts of
//! scratch per application — the `z = x/deg` scale vector of
//! [`crate::WalkOp`], the projected input copy of
//! [`crate::DeflatedOp`] — and allocating that scratch per call puts a
//! `malloc`/`free` pair on the hottest path in the codebase.
//!
//! [`with_scratch`] instead checks buffers out of a per-thread pool:
//! the first applications on a thread allocate, every later one
//! reuses, so a whole Lanczos/power/probe run performs **zero heap
//! allocation per operator application** in steady state. Nested
//! checkouts (a [`crate::DeflatedOp`] whose inner operator also needs
//! scratch) receive distinct buffers because checked-out buffers leave
//! the pool.
//!
//! Buffers are keyed by power-of-two *size class*: a checkout only
//! reuses a buffer whose capacity matches its class, so alternating
//! large and small requests each get their own buffer instead of
//! resizing one back and forth, and a small request never grows to the
//! largest `n` the thread has ever seen. The pool keeps at most
//! [`MAX_POOLED`] buffers per thread (drops the returning buffer past
//! that), which bounds how much memory an idle persistent worker pins.
//!
//! Thread-local storage is what keeps the operators `Sync`: a shared
//! `&WalkOp` can be applied concurrently from many pool workers (the
//! probe does exactly that) and each worker transparently gets its own
//! scratch. Buffer contents are **unspecified on entry** — callers
//! must fully overwrite what they read, which also keeps results
//! independent of reuse history (the bit-for-bit serial-equivalence
//! contract).

use socmix_obs::{Counter, Gauge};
use std::cell::{Cell, RefCell, UnsafeCell};

thread_local! {
    static SCRATCH: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
    static ARENA: ScratchArena = const { ScratchArena::new() };
}

/// Checkouts served from a pooled buffer (the steady state).
static POOL_HITS: Counter = Counter::new("linalg.scratch.hits");
/// Checkouts that had to allocate (cold pool or new size class).
static POOL_MISSES: Counter = Counter::new("linalg.scratch.misses");
/// Bytes currently parked in scratch pools across all threads —
/// falls on checkout, rises on return, so the level is what an idle
/// process pins. Dropped returns (pool full) leave it untouched.
static POOL_BYTES_RETAINED: Gauge = Gauge::new("linalg.scratch.bytes_retained");

/// Most buffers retained per thread; a returning buffer is dropped
/// once the pool is full. Nested checkout depth in this codebase is
/// 2–3 (`DeflatedOp` over `SymmetricWalkOp`), so 8 leaves headroom.
pub const MAX_POOLED: usize = 8;

/// Smallest buffer class, so tiny requests don't fragment the pool
/// into many near-empty classes.
const MIN_CLASS: usize = 64;

fn size_class(n: usize) -> usize {
    n.next_power_of_two().max(MIN_CLASS)
}

/// Runs `f` with a scratch buffer of length `n` checked out of the
/// calling thread's buffer pool.
///
/// The buffer's contents are unspecified; `f` must write every entry
/// it later reads. The buffer returns to the pool when `f` returns
/// (on panic it is simply dropped).
pub fn with_scratch<R>(n: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    let class = size_class(n);
    let mut buf = match SCRATCH.with(|s| {
        let mut pool = s.borrow_mut();
        pool.iter()
            .position(|b| b.capacity() >= class && b.capacity() < class * 2)
            .map(|i| pool.swap_remove(i))
    }) {
        Some(buf) => {
            POOL_HITS.incr();
            POOL_BYTES_RETAINED.add(-((buf.capacity() * 8) as i64));
            buf
        }
        None => {
            POOL_MISSES.incr();
            Vec::with_capacity(class)
        }
    };
    buf.resize(n, 0.0);
    let r = f(&mut buf);
    SCRATCH.with(|s| {
        let mut pool = s.borrow_mut();
        if pool.len() < MAX_POOLED {
            POOL_BYTES_RETAINED.add((buf.capacity() * 8) as i64);
            pool.push(buf);
        }
    });
    r
}

/// Allocations served by [`ScratchArena::alloc_f64`]/[`alloc_f32`]
/// (bumps, not heap calls — compare against `linalg.arena.slabs`).
///
/// [`alloc_f32`]: ScratchArena::alloc_f32
static ARENA_ALLOCS: Counter = Counter::new("linalg.arena.allocs");
/// Slabs the arenas actually pulled from the global allocator.
static ARENA_SLABS: Counter = Counter::new("linalg.arena.slabs");
/// Bytes currently backing arena slabs across all threads.
static ARENA_BYTES_RETAINED: Gauge = Gauge::new("linalg.arena.bytes_retained");

/// Words (`u64`) in the first slab a thread's arena allocates; later
/// slabs double, so a working set of `W` bytes costs O(log W) heap
/// calls ever.
const MIN_SLAB_WORDS: usize = 1 << 12; // 32 KiB
/// Retained arena capacity per thread. When the outermost
/// [`with_arena`] scope exits with more than this backing a thread's
/// slabs, the arena is released entirely so an idle worker does not
/// pin a peak-sized working set.
const MAX_RETAINED_WORDS: usize = 1 << 23; // 64 MiB

/// A per-thread bump arena for block-sized walk buffers.
///
/// The buffer pool above is sized for the O(n) scratch vectors of the
/// serial operators; the batch evolver and the blocked kernels need
/// *block*-shaped buffers (`n × B` ping-pong blocks, per-segment
/// accumulators) whose sizes vary call to call, which would defeat the
/// pool's size-class reuse and put `malloc`/`free` back on the hot
/// path. An arena checkout is a cursor bump: allocations within one
/// [`with_arena`] scope are disjoint sub-slices of a few long-lived
/// slabs, and the whole scope is released by moving the cursor back.
///
/// Slabs are `Box<[u64]>`, so growing the slab list never moves
/// existing slabs — outstanding allocations stay valid while the arena
/// grows. Allocations are zero-filled on checkout, so results cannot
/// depend on reuse history (the same contract the buffer pool's
/// callers uphold by overwriting).
pub struct ScratchArena {
    slabs: UnsafeCell<Vec<Box<[u64]>>>,
    /// (slab index, word offset) of the next free word.
    cursor: Cell<(usize, usize)>,
    /// Live [`with_arena`] nesting depth on this thread.
    depth: Cell<usize>,
}

impl ScratchArena {
    const fn new() -> Self {
        ScratchArena {
            slabs: UnsafeCell::new(Vec::new()),
            cursor: Cell::new((0, 0)),
            depth: Cell::new(0),
        }
    }

    /// Bumps the cursor past `words` words, growing the slab list if
    /// no existing slab has room. Returns a pointer to storage that no
    /// other live allocation overlaps.
    fn alloc_words(&self, words: usize) -> *mut u64 {
        ARENA_ALLOCS.incr();
        // SAFETY: the arena is thread-local (never shared across
        // threads) and re-entrancy cannot observe a broken state: the
        // mutable borrow ends before this method returns, and growth
        // only pushes new slabs — existing `Box<[u64]>` slabs never
        // move, so pointers handed out earlier stay valid.
        let slabs = unsafe { &mut *self.slabs.get() };
        let (mut si, mut off) = self.cursor.get();
        loop {
            if si < slabs.len() && words <= slabs[si].len() - off {
                let p = slabs[si][off..].as_mut_ptr();
                self.cursor.set((si, off + words));
                return p;
            }
            if si + 1 < slabs.len() {
                si += 1;
                off = 0;
                continue;
            }
            let cap = slabs
                .last()
                .map(|s| s.len() * 2)
                .unwrap_or(MIN_SLAB_WORDS)
                .max(words)
                .max(MIN_SLAB_WORDS);
            slabs.push(vec![0u64; cap].into_boxed_slice());
            ARENA_SLABS.incr();
            ARENA_BYTES_RETAINED.add((cap * 8) as i64);
            si = slabs.len() - 1;
            off = 0;
        }
    }

    /// A zeroed `f64` slice of length `n`, valid for the enclosing
    /// [`with_arena`] scope.
    ///
    /// Returning `&mut` from `&self` is the point of a bump arena:
    /// each call hands out a *disjoint* sub-slice of the slabs, so the
    /// exclusive borrows never alias (clippy cannot see that through
    /// the `UnsafeCell`).
    #[allow(clippy::mut_from_ref)]
    pub fn alloc_f64(&self, n: usize) -> &mut [f64] {
        let p = self.alloc_words(n).cast::<f64>();
        // SAFETY: `alloc_words` returned exclusive storage for `n`
        // words that no other live allocation overlaps (the cursor
        // only moves forward until the scope exits, and scope exit
        // outlives the returned borrow); `f64` has the same size and
        // alignment as the `u64` slab words, and every byte is
        // initialized by the fill below.
        let s = unsafe { std::slice::from_raw_parts_mut(p, n) };
        s.fill(0.0);
        s
    }

    /// A zeroed `f32` slice of length `n`, valid for the enclosing
    /// [`with_arena`] scope (disjoint borrows — see [`Self::alloc_f64`]).
    #[allow(clippy::mut_from_ref)]
    pub fn alloc_f32(&self, n: usize) -> &mut [f32] {
        let p = self.alloc_words(n.div_ceil(2)).cast::<f32>();
        // SAFETY: `⌈n/2⌉` words cover `n` `f32`s; the storage is
        // exclusive (same argument as `alloc_f64`), `f32`'s alignment
        // divides `u64`'s, and the fill below initializes every byte.
        let s = unsafe { std::slice::from_raw_parts_mut(p, n) };
        s.fill(0.0);
        s
    }

    /// Releases all slabs (outermost scope exit past the retention
    /// cap, or consolidation of fragmented small slabs).
    fn reset_slabs(&self, keep_last_only: bool) {
        // SAFETY: called only at depth 0, when every `with_arena`
        // scope has exited, so no allocation borrows are live and
        // dropping slabs cannot invalidate anything.
        let slabs = unsafe { &mut *self.slabs.get() };
        let total: usize = slabs.iter().map(|s| s.len()).sum();
        if total > MAX_RETAINED_WORDS {
            ARENA_BYTES_RETAINED.add(-((total * 8) as i64));
            slabs.clear();
        } else if keep_last_only && slabs.len() > 1 {
            // consolidate: keep only the (largest, last) slab so the
            // next scope bump-allocates from one contiguous region
            let dropped: usize = slabs[..slabs.len() - 1].iter().map(|s| s.len()).sum();
            ARENA_BYTES_RETAINED.add(-((dropped * 8) as i64));
            slabs.drain(..slabs.len() - 1);
        }
    }
}

/// Restores the arena cursor (and trims slabs at the outermost scope)
/// even if the scope body panics.
struct ArenaScope<'a> {
    arena: &'a ScratchArena,
    saved: (usize, usize),
}

impl Drop for ArenaScope<'_> {
    fn drop(&mut self) {
        self.arena.cursor.set(self.saved);
        let depth = self.arena.depth.get() - 1;
        self.arena.depth.set(depth);
        if depth == 0 {
            self.arena.reset_slabs(true);
        }
    }
}

/// Runs `f` with the calling thread's bump arena; every allocation
/// made inside is released (cursor rewind, O(1)) when `f` returns.
///
/// Nested scopes stack: an inner scope's allocations are released at
/// the inner exit while the outer scope's stay live — the inner scope
/// can never hand back storage an outer allocation owns because the
/// cursor only rewinds to where the inner scope started.
pub fn with_arena<R>(f: impl FnOnce(&ScratchArena) -> R) -> R {
    ARENA.with(|a| {
        a.depth.set(a.depth.get() + 1);
        let scope = ArenaScope {
            arena: a,
            saved: a.cursor.get(),
        };
        let r = f(scope.arena);
        drop(scope);
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_has_requested_length() {
        with_scratch(17, |b| assert_eq!(b.len(), 17));
        with_scratch(3, |b| assert_eq!(b.len(), 3));
        with_scratch(40, |b| assert_eq!(b.len(), 40));
    }

    #[test]
    fn nested_checkouts_are_distinct() {
        with_scratch(8, |outer| {
            outer.fill(1.0);
            with_scratch(8, |inner| {
                inner.fill(2.0);
            });
            assert!(outer.iter().all(|&v| v == 1.0), "inner must not alias");
        });
    }

    #[test]
    fn zero_length_scratch() {
        with_scratch(0, |b| assert!(b.is_empty()));
    }

    #[test]
    fn buffer_is_reused_not_reallocated() {
        // warm the pool, then confirm a same-size checkout reuses the
        // backing capacity (pointer-stable across checkouts)
        let p1 = with_scratch(64, |b| b.as_ptr() as usize);
        let p2 = with_scratch(64, |b| b.as_ptr() as usize);
        assert_eq!(p1, p2, "steady-state checkout must reuse the buffer");
    }

    #[test]
    fn alternating_sizes_keep_distinct_buffers() {
        // large and small checkouts land in different size classes, so
        // neither resizes the other's buffer back and forth
        let big = with_scratch(100_000, |b| b.as_ptr() as usize);
        let small = with_scratch(100, |b| b.as_ptr() as usize);
        assert_ne!(big, small);
        for _ in 0..4 {
            assert_eq!(with_scratch(100_000, |b| b.as_ptr() as usize), big);
            assert_eq!(with_scratch(100, |b| b.as_ptr() as usize), small);
        }
    }

    #[test]
    fn arena_allocations_are_disjoint_and_zeroed() {
        with_arena(|a| {
            let x = a.alloc_f64(100);
            assert!(x.iter().all(|&v| v == 0.0));
            x.fill(1.0);
            let y = a.alloc_f64(100);
            assert!(y.iter().all(|&v| v == 0.0), "must not alias x");
            y.fill(2.0);
            assert!(x.iter().all(|&v| v == 1.0));
            let z = a.alloc_f32(64);
            assert!(z.iter().all(|&v| v == 0.0));
            z.fill(3.0);
            assert!(x.iter().all(|&v| v == 1.0) && y.iter().all(|&v| v == 2.0));
        });
    }

    #[test]
    fn arena_scope_exit_reuses_storage() {
        // warm: first scope allocates the slab
        let p1 = with_arena(|a| a.alloc_f64(1000).as_ptr() as usize);
        // steady state: the next scope starts from the same cursor
        let p2 = with_arena(|a| a.alloc_f64(1000).as_ptr() as usize);
        assert_eq!(p1, p2, "scope exit must rewind the cursor");
    }

    #[test]
    fn arena_nested_scopes_stack() {
        with_arena(|outer| {
            let x = outer.alloc_f64(32);
            x.fill(7.0);
            let inner_ptr = with_arena(|inner| {
                let w = inner.alloc_f64(32);
                w.fill(9.0);
                w.as_ptr() as usize
            });
            // outer allocation survives the inner scope untouched
            assert!(x.iter().all(|&v| v == 7.0));
            // the inner scope's storage is free again for the outer
            let y = outer.alloc_f64(32);
            assert_eq!(y.as_ptr() as usize, inner_ptr);
            assert!(y.iter().all(|&v| v == 0.0), "reused storage re-zeroed");
        });
    }

    #[test]
    fn arena_grows_past_first_slab() {
        with_arena(|a| {
            // far more than MIN_SLAB_WORDS: forces slab growth while
            // earlier allocations stay valid
            let first = a.alloc_f64(100);
            first.fill(1.0);
            let big = a.alloc_f64(MIN_SLAB_WORDS * 4);
            assert_eq!(big.len(), MIN_SLAB_WORDS * 4);
            big[0] = 5.0;
            assert!(first.iter().all(|&v| v == 1.0));
        });
    }

    #[test]
    fn arena_releases_oversized_retention() {
        // a working set past the retention cap must be dropped at the
        // outermost exit, then a new scope starts from a fresh slab
        with_arena(|a| {
            let huge = a.alloc_f64(MAX_RETAINED_WORDS + 1024);
            huge[0] = 1.0;
        });
        with_arena(|a| {
            let small = a.alloc_f64(8);
            assert!(small.iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn pool_retention_is_bounded() {
        // deeper simultaneous nesting than MAX_POOLED must not grow
        // the retained pool past the cap (excess buffers drop)
        fn nest(depth: usize) {
            if depth > 0 {
                with_scratch(32, |_| nest(depth - 1));
            }
        }
        nest(MAX_POOLED + 4);
        let retained = SCRATCH.with(|s| s.borrow().len());
        assert!(retained <= MAX_POOLED, "retained {retained} buffers");
    }
}
