//! Reusable per-thread scratch buffers for operator hot paths.
//!
//! Every iterative driver in this workspace (Lanczos, power iteration,
//! CG, the batch evolver) reduces to thousands of repeated
//! `LinearOp::apply` calls. The operators need small amounts of
//! scratch per application — the `z = x/deg` scale vector of
//! [`crate::WalkOp`], the projected input copy of
//! [`crate::DeflatedOp`] — and allocating that scratch per call puts a
//! `malloc`/`free` pair on the hottest path in the codebase.
//!
//! [`with_scratch`] instead checks buffers out of a per-thread pool:
//! the first applications on a thread allocate, every later one
//! reuses, so a whole Lanczos/power/probe run performs **zero heap
//! allocation per operator application** in steady state. Nested
//! checkouts (a [`crate::DeflatedOp`] whose inner operator also needs
//! scratch) receive distinct buffers because checked-out buffers leave
//! the pool.
//!
//! Buffers are keyed by power-of-two *size class*: a checkout only
//! reuses a buffer whose capacity matches its class, so alternating
//! large and small requests each get their own buffer instead of
//! resizing one back and forth, and a small request never grows to the
//! largest `n` the thread has ever seen. The pool keeps at most
//! [`MAX_POOLED`] buffers per thread (drops the returning buffer past
//! that), which bounds how much memory an idle persistent worker pins.
//!
//! Thread-local storage is what keeps the operators `Sync`: a shared
//! `&WalkOp` can be applied concurrently from many pool workers (the
//! probe does exactly that) and each worker transparently gets its own
//! scratch. Buffer contents are **unspecified on entry** — callers
//! must fully overwrite what they read, which also keeps results
//! independent of reuse history (the bit-for-bit serial-equivalence
//! contract).

use socmix_obs::{Counter, Gauge};
use std::cell::RefCell;

thread_local! {
    static SCRATCH: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Checkouts served from a pooled buffer (the steady state).
static POOL_HITS: Counter = Counter::new("linalg.scratch.hits");
/// Checkouts that had to allocate (cold pool or new size class).
static POOL_MISSES: Counter = Counter::new("linalg.scratch.misses");
/// Bytes currently parked in scratch pools across all threads —
/// falls on checkout, rises on return, so the level is what an idle
/// process pins. Dropped returns (pool full) leave it untouched.
static POOL_BYTES_RETAINED: Gauge = Gauge::new("linalg.scratch.bytes_retained");

/// Most buffers retained per thread; a returning buffer is dropped
/// once the pool is full. Nested checkout depth in this codebase is
/// 2–3 (`DeflatedOp` over `SymmetricWalkOp`), so 8 leaves headroom.
pub const MAX_POOLED: usize = 8;

/// Smallest buffer class, so tiny requests don't fragment the pool
/// into many near-empty classes.
const MIN_CLASS: usize = 64;

fn size_class(n: usize) -> usize {
    n.next_power_of_two().max(MIN_CLASS)
}

/// Runs `f` with a scratch buffer of length `n` checked out of the
/// calling thread's buffer pool.
///
/// The buffer's contents are unspecified; `f` must write every entry
/// it later reads. The buffer returns to the pool when `f` returns
/// (on panic it is simply dropped).
pub fn with_scratch<R>(n: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    let class = size_class(n);
    let mut buf = match SCRATCH.with(|s| {
        let mut pool = s.borrow_mut();
        pool.iter()
            .position(|b| b.capacity() >= class && b.capacity() < class * 2)
            .map(|i| pool.swap_remove(i))
    }) {
        Some(buf) => {
            POOL_HITS.incr();
            POOL_BYTES_RETAINED.add(-((buf.capacity() * 8) as i64));
            buf
        }
        None => {
            POOL_MISSES.incr();
            Vec::with_capacity(class)
        }
    };
    buf.resize(n, 0.0);
    let r = f(&mut buf);
    SCRATCH.with(|s| {
        let mut pool = s.borrow_mut();
        if pool.len() < MAX_POOLED {
            POOL_BYTES_RETAINED.add((buf.capacity() * 8) as i64);
            pool.push(buf);
        }
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_has_requested_length() {
        with_scratch(17, |b| assert_eq!(b.len(), 17));
        with_scratch(3, |b| assert_eq!(b.len(), 3));
        with_scratch(40, |b| assert_eq!(b.len(), 40));
    }

    #[test]
    fn nested_checkouts_are_distinct() {
        with_scratch(8, |outer| {
            outer.fill(1.0);
            with_scratch(8, |inner| {
                inner.fill(2.0);
            });
            assert!(outer.iter().all(|&v| v == 1.0), "inner must not alias");
        });
    }

    #[test]
    fn zero_length_scratch() {
        with_scratch(0, |b| assert!(b.is_empty()));
    }

    #[test]
    fn buffer_is_reused_not_reallocated() {
        // warm the pool, then confirm a same-size checkout reuses the
        // backing capacity (pointer-stable across checkouts)
        let p1 = with_scratch(64, |b| b.as_ptr() as usize);
        let p2 = with_scratch(64, |b| b.as_ptr() as usize);
        assert_eq!(p1, p2, "steady-state checkout must reuse the buffer");
    }

    #[test]
    fn alternating_sizes_keep_distinct_buffers() {
        // large and small checkouts land in different size classes, so
        // neither resizes the other's buffer back and forth
        let big = with_scratch(100_000, |b| b.as_ptr() as usize);
        let small = with_scratch(100, |b| b.as_ptr() as usize);
        assert_ne!(big, small);
        for _ in 0..4 {
            assert_eq!(with_scratch(100_000, |b| b.as_ptr() as usize), big);
            assert_eq!(with_scratch(100, |b| b.as_ptr() as usize), small);
        }
    }

    #[test]
    fn pool_retention_is_bounded() {
        // deeper simultaneous nesting than MAX_POOLED must not grow
        // the retained pool past the cap (excess buffers drop)
        fn nest(depth: usize) {
            if depth > 0 {
                with_scratch(32, |_| nest(depth - 1));
            }
        }
        nest(MAX_POOLED + 4);
        let retained = SCRATCH.with(|s| s.borrow().len());
        assert!(retained <= MAX_POOLED, "retained {retained} buffers");
    }
}
