//! Partitioned CSR matvec over the multi-process shard backend.
//!
//! [`plan_shards`] splits a graph's CSR structure along a node
//! partition (an edge-cut, typically from `socmix-community`) into
//! per-shard blocks: each shard owns an ascending set of global rows,
//! a local CSR whose columns index an ascending *gathered input list*
//! (the global columns its rows touch), and nothing else. The blocks
//! are shipped once to the worker processes of a
//! [`socmix_par::shard::ShardGroup`]; every apply round then exchanges
//! only the gathered input slices and the per-row sums.
//!
//! [`DistributedOp`] wraps a plan plus a live group as an ordinary
//! [`LinearOp`]/[`MultiLinearOp`], so Lanczos, power iteration, the
//! batch engine, and the TVD probes run unmodified on either backend.
//!
//! # Bit-for-bit determinism
//!
//! The sharded result is **bitwise identical** to the shared-memory
//! scalar kernel at every shard count:
//!
//! - the parent computes the scaled vector `z[i] = x[i] · inv[i]`
//!   exactly as the local kernel does (same multiply, same rounding),
//! - each shard's input list is ascending in global id, so the column
//!   remap is monotone and every row accumulates its neighbors in the
//!   exact storage order of the global CSR,
//! - workers sum `f64`s sequentially per row — no reassociation — and
//!   the symmetric finisher (`· inv[i]`) is applied parent-side as the
//!   same final multiply.
//!
//! The cross-shard determinism tests assert this equality on the whole
//! fixture catalog.

use crate::multivec::MultiLinearOp;
use crate::op::LinearOp;
use crate::workspace::with_scratch;
use socmix_graph::Graph;
use socmix_obs::Counter;
use socmix_par::shard::{frame, ShardError, ShardGroup, ShardSpec};
use std::sync::{Arc, Mutex};

/// Matvec rounds routed through the process-sharded backend.
static DIST_MATVECS: Counter = Counter::new("linalg.matvec.dist");
/// Batched matvec rounds routed through the process-sharded backend.
static DIST_MULTI: Counter = Counter::new("linalg.matvec.dist_multi");

/// One shard's slice of the partitioned CSR structure.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ShardPart {
    /// Global row ids owned by this shard, ascending.
    pub rows: Vec<u32>,
    /// Global column ids this shard's rows reference, ascending and
    /// deduplicated — the gather list for the input slice.
    pub inputs: Vec<u32>,
    /// Local CSR row offsets (`rows.len() + 1` entries).
    pub offsets: Vec<usize>,
    /// Local CSR columns: positions into `inputs`.
    pub targets: Vec<u32>,
}

/// A partitioned CSR structure ready for [`DistributedOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of shards (= parts, some possibly empty).
    pub shards: usize,
    /// FNV-1a fingerprint of (structure, labels, shard count); workers
    /// cache loaded blocks by it.
    pub fingerprint: u64,
    /// Per-shard blocks.
    pub parts: Vec<ShardPart>,
    /// Edges crossing between shards (each undirected edge once) —
    /// the communication-volume driver.
    pub edge_cut: usize,
}

/// The contiguous `k`-way labeling `label(v) = ⌊v·k/n⌋` (mirrors
/// `socmix-community`'s `Partition::contiguous`, which this crate
/// cannot depend on). Labels stay `< k` even when `k > n`, so a plan
/// built from them always has exactly `k` parts (trailing ones empty).
pub fn contiguous_labels(n: usize, k: usize) -> Vec<u32> {
    assert!(k >= 1, "need at least one part");
    if n == 0 {
        return Vec::new();
    }
    (0..n).map(|v| (v * k / n) as u32).collect()
}

/// Splits `g`'s CSR structure along `labels` into `shards` blocks.
///
/// Every label must be `< shards`; parts may be empty. The per-row
/// column remap (global id → position in the ascending input list) is
/// monotone, so each local row accumulates in the exact storage order
/// of the global CSR — the root of the bitwise-determinism guarantee.
pub fn plan_shards(g: &Graph, labels: &[u32], shards: usize) -> ShardPlan {
    assert_eq!(labels.len(), g.num_nodes(), "one label per node");
    assert!(shards >= 1, "need at least one shard");
    let offsets = g.offsets();
    let targets = g.raw_targets();
    let mut parts: Vec<ShardPart> = vec![ShardPart::default(); shards];
    for (v, &l) in labels.iter().enumerate() {
        assert!(
            (l as usize) < shards,
            "label {l} out of range for {shards} shards"
        );
        parts[l as usize].rows.push(v as u32);
    }
    for part in &mut parts {
        let mut cols: Vec<u32> = Vec::new();
        for &r in &part.rows {
            let r = r as usize;
            cols.extend_from_slice(&targets[offsets[r]..offsets[r + 1]]);
        }
        cols.sort_unstable();
        cols.dedup();
        part.inputs = cols;
        part.offsets.push(0);
        for &r in &part.rows {
            let r = r as usize;
            for &c in &targets[offsets[r]..offsets[r + 1]] {
                // ascending input list ⇒ monotone remap: local order
                // per row equals global storage order.
                let li = part
                    .inputs
                    .binary_search(&c)
                    .expect("column present in its own gather list");
                part.targets.push(li as u32);
            }
            part.offsets.push(part.targets.len());
        }
    }
    let mut edge_cut = 0usize;
    for (v, &lv) in labels.iter().enumerate() {
        for &u in &targets[offsets[v]..offsets[v + 1]] {
            if (u as usize) > v && labels[u as usize] != lv {
                edge_cut += 1;
            }
        }
    }
    let mut h = Fnv::new();
    h.write_u64(g.num_nodes() as u64);
    h.write_u64(targets.len() as u64);
    h.write_u64(shards as u64);
    h.write(frame::usizes_as_bytes(offsets));
    h.write(frame::u32s_as_bytes(targets));
    h.write(frame::u32s_as_bytes(labels));
    ShardPlan {
        shards,
        fingerprint: h.finish(),
        parts,
        edge_cut,
    }
}

/// FNV-1a, the workspace's standard content fingerprint.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Which final multiply the operator applies when scattering row sums
/// back into the global output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Finisher {
    /// `P = D⁻¹A` (row-vector convention): `y[j] = Σ z[i]`, no
    /// finisher — the scaling already happened on the input side.
    Walk,
    /// `S = D^{-1/2}AD^{-1/2}`: `y[i] = (Σ z[j]) · inv[i]`.
    Symmetric,
}

/// Reusable per-operator buffers for the gather/exchange/scatter
/// round. One lock per apply; rounds are serialized by the group's
/// socket mutex anyway.
#[derive(Default)]
struct DistScratch {
    z: Vec<f64>,
    ins: Vec<Vec<f64>>,
    outs: Vec<Vec<f64>>,
}

/// A walk operator applied across worker processes.
///
/// Trait-interchangeable with [`crate::WalkOp`] /
/// [`crate::SymmetricWalkOp`]: same [`LinearOp`] / [`MultiLinearOp`]
/// surface, bitwise-identical results. Construction ships the CSR
/// blocks to the worker group (cached by fingerprint, so rebuilding an
/// operator over the same graph re-sends nothing).
pub struct DistributedOp<'g> {
    graph: &'g Graph,
    plan: ShardPlan,
    group: Arc<ShardGroup>,
    /// `1/deg` (walk) or `1/√deg` (symmetric); 0 for isolated nodes.
    inv_scale: Vec<f64>,
    finisher: Finisher,
    scratch: Mutex<DistScratch>,
}

impl<'g> DistributedOp<'g> {
    /// Sharded `P = D⁻¹A` over the edge-cut `labels` (one label per
    /// node, each `< shards`).
    pub fn walk(graph: &'g Graph, labels: &[u32], shards: usize) -> Result<Self, ShardError> {
        Self::with_finisher(graph, labels, shards, Finisher::Walk)
    }

    /// Sharded `S = D^{-1/2}AD^{-1/2}` over the edge-cut `labels`.
    pub fn symmetric(graph: &'g Graph, labels: &[u32], shards: usize) -> Result<Self, ShardError> {
        Self::with_finisher(graph, labels, shards, Finisher::Symmetric)
    }

    fn with_finisher(
        graph: &'g Graph,
        labels: &[u32],
        shards: usize,
        finisher: Finisher,
    ) -> Result<Self, ShardError> {
        let group = ShardGroup::obtain(shards)?;
        let plan = plan_shards(graph, labels, shards);
        let specs: Vec<ShardSpec<'_>> = plan
            .parts
            .iter()
            .map(|p| ShardSpec {
                fingerprint: plan.fingerprint,
                rows: p.rows.len(),
                inputs: p.inputs.len(),
                offsets: &p.offsets,
                targets: &p.targets,
            })
            .collect();
        group.load(&specs)?;
        let inv_scale = (0..graph.num_nodes())
            .map(|v| {
                let d = graph.degree(v as u32);
                if d == 0 {
                    0.0
                } else {
                    match finisher {
                        Finisher::Walk => 1.0 / d as f64,
                        Finisher::Symmetric => 1.0 / (d as f64).sqrt(),
                    }
                }
            })
            .collect();
        Ok(DistributedOp {
            graph,
            plan,
            group,
            inv_scale,
            finisher,
            scratch: Mutex::new(DistScratch::default()),
        })
    }

    /// The partition plan in force (edge cut, per-shard blocks).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The worker group this operator exchanges rounds with.
    pub fn group(&self) -> &Arc<ShardGroup> {
        &self.group
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Fallible apply: `y = Op · x` through the worker processes,
    /// surfacing shard failures as typed errors instead of falling
    /// back. The infallible [`LinearOp::apply`] wraps this with a
    /// local-kernel fallback.
    pub fn try_apply(&self, x: &[f64], y: &mut [f64]) -> Result<(), ShardError> {
        assert_eq!(x.len(), self.dim());
        assert_eq!(y.len(), self.dim());
        let mut s = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        let DistScratch { z, ins, outs } = &mut *s;
        // z[i] = x[i]·inv[i]: the exact multiply (and rounding) of the
        // local scalar kernel.
        z.clear();
        z.extend(x.iter().zip(&self.inv_scale).map(|(xi, inv)| xi * inv));
        ins.resize(self.plan.shards, Vec::new());
        outs.resize(self.plan.shards, Vec::new());
        for (buf, part) in ins.iter_mut().zip(&self.plan.parts) {
            buf.clear();
            buf.extend(part.inputs.iter().map(|&gid| z[gid as usize]));
        }
        self.group.apply(self.plan.fingerprint, ins, outs)?;
        self.scatter(outs, y, 1, 1)?;
        DIST_MATVECS.incr();
        Ok(())
    }

    /// Fallible batched apply over row-major blocks (`stride` doubles
    /// per row, first `width` columns active).
    pub fn try_apply_multi(
        &self,
        xs: &[f64],
        ys: &mut [f64],
        stride: usize,
        width: usize,
    ) -> Result<(), ShardError> {
        let n = self.dim();
        assert!(xs.len() >= n * stride && ys.len() >= n * stride);
        assert!(width <= stride);
        if width == 0 {
            return Ok(());
        }
        let mut s = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        let DistScratch { ins, outs, .. } = &mut *s;
        ins.resize(self.plan.shards, Vec::new());
        outs.resize(self.plan.shards, Vec::new());
        // Width-packed gather with the scaling folded in: workers sum
        // already-scaled rows, which is the exact two-op sequence
        // (multiply-round, add-round) of the local batched kernel's
        // `y[c] += x[c]·d`.
        for (buf, part) in ins.iter_mut().zip(&self.plan.parts) {
            buf.clear();
            buf.reserve(part.inputs.len() * width);
            for &gid in &part.inputs {
                let gid = gid as usize;
                let inv = self.inv_scale[gid];
                let xr = &xs[gid * stride..gid * stride + width];
                buf.extend(xr.iter().map(|&v| v * inv));
            }
        }
        self.group
            .apply_multi(self.plan.fingerprint, width, ins, outs)?;
        self.scatter(outs, ys, stride, width)?;
        DIST_MULTI.incr();
        Ok(())
    }

    /// Scatters per-shard row sums back into the global output,
    /// applying the finisher multiply.
    fn scatter(
        &self,
        outs: &[Vec<f64>],
        ys: &mut [f64],
        stride: usize,
        width: usize,
    ) -> Result<(), ShardError> {
        for (shard, (out, part)) in outs.iter().zip(&self.plan.parts).enumerate() {
            if out.len() != part.rows.len() * width {
                return Err(ShardError::Protocol {
                    shard,
                    message: format!(
                        "expected {} result doubles, got {}",
                        part.rows.len() * width,
                        out.len()
                    ),
                });
            }
            for (li, &gid) in part.rows.iter().enumerate() {
                let gid = gid as usize;
                let fin = match self.finisher {
                    Finisher::Walk => 1.0,
                    Finisher::Symmetric => self.inv_scale[gid],
                };
                let src = &out[li * width..(li + 1) * width];
                let dst = &mut ys[gid * stride..gid * stride + width];
                match self.finisher {
                    Finisher::Walk => dst.copy_from_slice(src),
                    Finisher::Symmetric => {
                        for (d, &v) in dst.iter_mut().zip(src) {
                            *d = v * fin;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The shared-memory fallback: the serial scalar kernel, bitwise
    /// identical to what the shard round would have produced.
    fn apply_local(&self, x: &[f64], y: &mut [f64]) {
        local_apply(self.graph, &self.inv_scale, self.finisher, x, y);
    }

    /// Batched shared-memory fallback (serial, bitwise identical to
    /// the local batched kernel).
    fn apply_local_multi(&self, xs: &[f64], ys: &mut [f64], stride: usize, width: usize) {
        local_apply_multi(
            self.graph,
            &self.inv_scale,
            self.finisher,
            xs,
            ys,
            stride,
            width,
        );
    }
}

/// Serial scalar walk kernel over explicit scaling — the fallback's
/// body, free-standing so the bitwise-equality tests can exercise it
/// without a live worker group.
fn local_apply(graph: &Graph, inv_scale: &[f64], finisher: Finisher, x: &[f64], y: &mut [f64]) {
    let n = graph.num_nodes();
    let offsets = graph.offsets();
    let targets = graph.raw_targets();
    with_scratch(n, |z| {
        for ((zi, xi), inv) in z.iter_mut().zip(x).zip(inv_scale) {
            *zi = xi * inv;
        }
        for (j, yj) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &i in &targets[offsets[j]..offsets[j + 1]] {
                acc += z[i as usize];
            }
            *yj = match finisher {
                Finisher::Walk => acc,
                Finisher::Symmetric => acc * inv_scale[j],
            };
        }
    });
}

/// Serial batched walk kernel over explicit scaling (fallback body of
/// [`DistributedOp::apply_local_multi`]).
#[allow(clippy::too_many_arguments)]
fn local_apply_multi(
    graph: &Graph,
    inv_scale: &[f64],
    finisher: Finisher,
    xs: &[f64],
    ys: &mut [f64],
    stride: usize,
    width: usize,
) {
    let n = graph.num_nodes();
    let offsets = graph.offsets();
    let targets = graph.raw_targets();
    for j in 0..n {
        let yr = &mut ys[j * stride..j * stride + width];
        yr.fill(0.0);
        for &i in &targets[offsets[j]..offsets[j + 1]] {
            let i = i as usize;
            let d = inv_scale[i];
            let xr = &xs[i * stride..i * stride + width];
            for (yc, &xc) in yr.iter_mut().zip(xr) {
                *yc += xc * d;
            }
        }
        if finisher == Finisher::Symmetric {
            let fin = inv_scale[j];
            for yc in yr.iter_mut() {
                *yc *= fin;
            }
        }
    }
}

impl LinearOp for DistributedOp<'_> {
    fn dim(&self) -> usize {
        self.graph.num_nodes()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        match self.try_apply(x, y) {
            Ok(()) => {}
            Err(e) => {
                socmix_obs::warn_once!(
                    "shard",
                    "sharded matvec failed ({e}); falling back to the shared-memory kernel"
                );
                self.apply_local(x, y);
            }
        }
    }
}

impl MultiLinearOp for DistributedOp<'_> {
    fn apply_multi_raw(&self, xs: &[f64], ys: &mut [f64], stride: usize, width: usize) {
        match self.try_apply_multi(xs, ys, stride, width) {
            Ok(()) => {}
            Err(e) => {
                socmix_obs::warn_once!(
                    "shard",
                    "sharded batched matvec failed ({e}); falling back to the \
                     shared-memory kernel"
                );
                self.apply_local_multi(xs, ys, stride, width);
            }
        }
    }
}

/// The auto-route hook used by `WalkOp`/`SymmetricWalkOp`
/// construction: when `SOCMIX_SHARDS > 1`, build a distributed twin
/// over the contiguous edge-cut; on any backend failure warn once and
/// return `None` (the operator keeps its local kernels).
pub(crate) fn auto_route(graph: &Graph, symmetric: bool) -> Option<Box<DistributedOp<'_>>> {
    let shards = socmix_par::shard::configured_shards();
    if shards <= 1 || graph.num_nodes() == 0 {
        return None;
    }
    let labels = contiguous_labels(graph.num_nodes(), shards);
    let built = if symmetric {
        DistributedOp::symmetric(graph, &labels, shards)
    } else {
        DistributedOp::walk(graph, &labels, shards)
    };
    match built {
        Ok(op) => Some(Box::new(op)),
        Err(e) => {
            socmix_obs::warn_once!(
                "shard",
                "SOCMIX_SHARDS={shards} requested but the shard backend is unavailable \
                 ({e}); using shared-memory kernels"
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socmix_graph::GraphBuilder;

    fn web() -> Graph {
        GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0), (1, 4)]).build()
    }

    #[test]
    fn contiguous_labels_cover_and_bound() {
        let l = contiguous_labels(10, 3);
        assert_eq!(l.len(), 10);
        assert!(l.iter().all(|&x| x < 3));
        for w in l.windows(2) {
            assert!(w[0] <= w[1], "labels must be monotone");
        }
        // more shards than nodes: labels stay in range, parts go empty
        let l = contiguous_labels(2, 5);
        assert!(l.iter().all(|&x| x < 5));
        assert!(contiguous_labels(0, 4).is_empty());
    }

    #[test]
    fn plan_partitions_rows_exactly_once() {
        let g = web();
        for shards in [1, 2, 3] {
            let labels = contiguous_labels(g.num_nodes(), shards);
            let plan = plan_shards(&g, &labels, shards);
            assert_eq!(plan.shards, shards);
            let mut all_rows: Vec<u32> = plan.parts.iter().flat_map(|p| p.rows.clone()).collect();
            all_rows.sort_unstable();
            assert_eq!(all_rows, (0..g.num_nodes() as u32).collect::<Vec<_>>());
            let nnz: usize = plan.parts.iter().map(|p| p.targets.len()).sum();
            assert_eq!(nnz, g.raw_targets().len());
        }
    }

    #[test]
    fn plan_local_blocks_replay_the_global_gather() {
        // Applying each local block to its gathered slice must equal
        // the global gather row-for-row (structure check, no workers).
        let g = web();
        let n = g.num_nodes();
        let z: Vec<f64> = (0..n).map(|i| ((i as f64) + 0.25).sin()).collect();
        let offsets = g.offsets();
        let targets = g.raw_targets();
        let labels = contiguous_labels(n, 2);
        let plan = plan_shards(&g, &labels, 2);
        for part in &plan.parts {
            let gathered: Vec<f64> = part.inputs.iter().map(|&gid| z[gid as usize]).collect();
            for (li, &r) in part.rows.iter().enumerate() {
                let r = r as usize;
                let mut want = 0.0;
                for &c in &targets[offsets[r]..offsets[r + 1]] {
                    want += z[c as usize];
                }
                let mut got = 0.0;
                for &lc in &part.targets[part.offsets[li]..part.offsets[li + 1]] {
                    got += gathered[lc as usize];
                }
                assert_eq!(want.to_bits(), got.to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn plan_edge_cut_matches_label_boundary() {
        let g = web();
        let labels = vec![0, 0, 0, 1, 1];
        let plan = plan_shards(&g, &labels, 2);
        // cut edges: (2,3), (4,0), (1,4)
        assert_eq!(plan.edge_cut, 3);
        let one = plan_shards(&g, &contiguous_labels(g.num_nodes(), 1), 1);
        assert_eq!(one.edge_cut, 0);
    }

    #[test]
    fn fingerprint_tracks_structure_and_partition() {
        let g = web();
        let n = g.num_nodes();
        let a = plan_shards(&g, &contiguous_labels(n, 2), 2);
        let b = plan_shards(&g, &contiguous_labels(n, 2), 2);
        assert_eq!(a.fingerprint, b.fingerprint, "same inputs, same fp");
        let c = plan_shards(&g, &contiguous_labels(n, 3), 3);
        assert_ne!(a.fingerprint, c.fingerprint, "shard count must change fp");
        let g2 = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]).build();
        let d = plan_shards(&g2, &contiguous_labels(g2.num_nodes(), 2), 2);
        assert_ne!(a.fingerprint, d.fingerprint, "structure must change fp");
    }

    #[test]
    fn local_fallbacks_match_shared_memory_ops() {
        // The fallback kernels must be bitwise equal to WalkOp /
        // SymmetricWalkOp so a mid-run shard failure cannot change
        // results. Exercised directly (no worker group needed).
        use crate::kernel::KernelConfig;
        use crate::op::{SymmetricWalkOp, WalkOp};
        let g = web();
        let n = g.num_nodes();
        let x: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) as f64) / 7.0).collect();
        for symmetric in [false, true] {
            let inv_scale: Vec<f64> = (0..n)
                .map(|v| {
                    let d = g.degree(v as u32) as f64;
                    if symmetric {
                        1.0 / d.sqrt()
                    } else {
                        1.0 / d
                    }
                })
                .collect();
            let finisher = if symmetric {
                Finisher::Symmetric
            } else {
                Finisher::Walk
            };
            let mut y = vec![0.0; n];
            local_apply(&g, &inv_scale, finisher, &x, &mut y);
            let want = if symmetric {
                SymmetricWalkOp::with_kernel(&g, socmix_par::Pool::serial(), KernelConfig::scalar())
                    .apply_vec(&x)
            } else {
                WalkOp::with_kernel(&g, socmix_par::Pool::serial(), KernelConfig::scalar())
                    .apply_vec(&x)
            };
            for (a, b) in y.iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits(), "symmetric={symmetric}");
            }
            let width = 3;
            let xs: Vec<f64> = (0..n * width).map(|i| ((i % 11) as f64) / 11.0).collect();
            let mut ys = vec![0.0; n * width];
            local_apply_multi(&g, &inv_scale, finisher, &xs, &mut ys, width, width);
            for c in 0..width {
                let col: Vec<f64> = (0..n).map(|i| xs[i * width + c]).collect();
                let want = if symmetric {
                    SymmetricWalkOp::with_kernel(
                        &g,
                        socmix_par::Pool::serial(),
                        KernelConfig::scalar(),
                    )
                    .apply_vec(&col)
                } else {
                    WalkOp::with_kernel(&g, socmix_par::Pool::serial(), KernelConfig::scalar())
                        .apply_vec(&col)
                };
                for (i, w) in want.iter().enumerate() {
                    assert_eq!(
                        ys[i * width + c].to_bits(),
                        w.to_bits(),
                        "col {c} row {i} symmetric={symmetric}"
                    );
                }
            }
        }
    }
}
