//! Eigensolvers and linear operators for random-walk spectra.
//!
//! The paper's first measurement method needs the **second largest
//! eigenvalue modulus** (SLEM) of the random-walk transition matrix
//! `P = D⁻¹A` of graphs with up to a million nodes. No mature sparse
//! eigensolver exists in the offline crate set, so this crate
//! implements the whole stack from scratch:
//!
//! - [`op`] — matrix-free [`op::LinearOp`]s over a CSR graph: the
//!   row-stochastic walk operator `P`, its symmetrization
//!   `S = D^{-1/2} A D^{-1/2}` (same spectrum, symmetric — the key
//!   trick that lets us use symmetric methods), lazy and deflated
//!   wrappers.
//! - [`kernel`] — matvec kernel selection (`SOCMIX_KERNEL`): the
//!   scalar baseline, a cache-blocked f64 gather (bit-for-bit equal
//!   to scalar), and the mixed-precision f32 path with its 1e-6
//!   tolerance contract.
//! - [`multivec`] — row-major `n × B` blocks and the batched
//!   [`multivec::MultiLinearOp`] apply: one CSR traversal serves `B`
//!   stacked distributions, the GEMM-shaped kernel behind the
//!   sampling probe.
//! - [`distributed`] — the partitioned-CSR multi-process backend:
//!   [`distributed::plan_shards`] splits the structure along an
//!   edge-cut, [`distributed::DistributedOp`] runs the same walk
//!   operators across worker processes (selected by `SOCMIX_SHARDS`,
//!   bit-for-bit equal to the shared-memory kernels).
//! - [`dense`] — dense symmetric **Jacobi** eigensolver, the ground
//!   truth for everything else on graphs up to a few hundred nodes.
//! - [`tridiag`] — symmetric tridiagonal QL with implicit shifts,
//!   the inner solver for Lanczos.
//! - [`lanczos`] — **Lanczos with full reorthogonalization**, the
//!   production path for SLEM on large graphs.
//! - [`power`] — power iteration with Rayleigh quotients, an
//!   independent second method used to cross-check Lanczos.
//! - [`vecops`] — the dense vector kernels shared by all of the
//!   above.
//! - [`workspace`] — per-thread reusable scratch buffers; with them
//!   the operators above allocate **nothing** per application, so the
//!   iterative drivers run allocation-free in steady state.
//!
//! Spectral facts used throughout (Theorem 2 of the paper, after
//! Sinclair): for a connected undirected graph the eigenvalues of `P`
//! are real, `1 = λ₁ > λ₂ ≥ … ≥ λₙ ≥ −1`, with `λₙ = −1` iff the
//! graph is bipartite; `µ = max(λ₂, −λₙ)`; and the eigenvector of
//! `S` for λ₁ is the known vector `D^{1/2}𝟙` (normalized), which we
//! deflate explicitly instead of estimating.

// Every pointer dereference inside an unsafe fn must carry its own
// unsafe block (and SAFETY comment) instead of riding the signature.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cg;
pub mod dense;
pub mod distributed;
pub mod kernel;
pub mod lanczos;
pub mod multivec;
pub mod op;
pub mod power;
pub mod tridiag;
pub mod vecops;
pub mod workspace;

pub use dense::{jacobi_eigen, DenseMatrix};
pub use distributed::{contiguous_labels, plan_shards, DistributedOp, ShardPart, ShardPlan};
pub use kernel::{KernelConfig, KernelKind};
pub use lanczos::{
    lanczos_extreme, lanczos_extreme_mixed, lanczos_topk, LanczosOptions, LanczosResult, TopkResult,
};
pub use multivec::{MultiLinearOp, MultiVec, MultiVecMut};
pub use op::{
    DeflatedOp, DeflatedOpF32, LazyOp, LinearOp, LinearOpF32, SymmetricWalkOp, SymmetricWalkOpF32,
    WalkOp,
};
pub use power::{
    power_iteration, power_iteration_mixed, spectral_radius_in_complement,
    spectral_radius_in_complement_mixed, PowerOptions, PowerResult, SpectralRadius,
};
