//! Dense vector kernels.
//!
//! Plain `f64` slices, no SIMD intrinsics — the hot loops here are
//! memory-bound gathers over the CSR arrays, and the compiler
//! autovectorizes the rest.

/// Dot product. Panics (debug) on length mismatch.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Normalizes `x` to unit Euclidean norm; returns the original norm.
/// A zero vector is left unchanged (returns 0).
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(x, 1.0 / n);
    }
    n
}

/// Removes the component of `x` along the *unit* vector `u`:
/// `x -= (u·x) u`. Returns the removed coefficient.
pub fn project_out(x: &mut [f64], u: &[f64]) -> f64 {
    let c = dot(u, x);
    axpy(-c, u, x);
    c
}

/// Maximum absolute entry (∞-norm).
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

// --- f32 counterparts for the mixed-precision kernels ---
//
// Storage is f32 (halved traffic), but every reduction accumulates in
// f64: an f32-only sum over 10⁵ terms loses ~4 digits, which would eat
// the entire f32 path's tolerance budget before the operator even runs.

/// f32 dot product, accumulated in f64.
///
/// Eight independent accumulators: a single f64 accumulator chains
/// every element through one ~4-cycle FP add, which made this pass
/// cost more than the matvec it was checking. The accumulation order
/// is fixed by the slice length alone, so results stay reproducible —
/// the f32 tolerance contract permits this reassociation (the f64
/// [`dot`] above must not and does not reassociate).
#[inline]
pub fn dot32(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xs, ys) in ca.by_ref().zip(cb.by_ref()) {
        for (a, (x, y)) in acc.iter_mut().zip(xs.iter().zip(ys)) {
            *a += f64::from(*x) * f64::from(*y);
        }
    }
    let mut tail = 0.0f64;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += f64::from(*x) * f64::from(*y);
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// Euclidean norm of an f32 vector (f64-accumulated).
#[inline]
pub fn norm2_32(a: &[f32]) -> f64 {
    dot32(a, a).sqrt()
}

/// `y += alpha * x` in f32.
#[inline]
pub fn axpy32(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` in f32.
#[inline]
pub fn scale32(x: &mut [f32], alpha: f32) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Normalizes an f32 vector (f64-accumulated norm); returns the
/// original norm. A zero vector is left unchanged (returns 0).
pub fn normalize32(x: &mut [f32]) -> f64 {
    let n = norm2_32(x);
    if n > 0.0 {
        scale32(x, (1.0 / n) as f32);
    }
    n
}

/// Residual norm `‖w − λ·v‖` over f32 slices, computed in f64 in one
/// fused read-only pass — the mixed power driver's convergence check,
/// which previously materialized the residual vector through a copy
/// and an axpy. Same eight-accumulator layout as [`dot32`].
#[inline]
pub fn resid_norm32(w: &[f32], v: &[f32], lambda: f64) -> f64 {
    debug_assert_eq!(w.len(), v.len());
    let mut acc = [0.0f64; 8];
    let mut cw = w.chunks_exact(8);
    let mut cv = v.chunks_exact(8);
    for (ws, vs) in cw.by_ref().zip(cv.by_ref()) {
        for (a, (x, y)) in acc.iter_mut().zip(ws.iter().zip(vs)) {
            let r = f64::from(*x) - lambda * f64::from(*y);
            *a += r * r;
        }
    }
    let mut tail = 0.0f64;
    for (x, y) in cw.remainder().iter().zip(cv.remainder()) {
        let r = f64::from(*x) - lambda * f64::from(*y);
        tail += r * r;
    }
    (((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail)
        .sqrt()
}

/// Removes the component of `x` along the *unit* f32 vector `u`
/// (coefficient computed in f64). Returns the removed coefficient.
pub fn project_out32(x: &mut [f32], u: &[f32]) -> f64 {
    let c = dot32(u, x);
    axpy32(-(c as f32), u, x);
    c
}

/// Sum of entries.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn normalize_unit() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn project_out_orthogonalizes() {
        let u = {
            let mut u = vec![1.0, 1.0];
            normalize(&mut u);
            u
        };
        let mut x = vec![2.0, 0.0];
        project_out(&mut x, &u);
        assert!(dot(&x, &u).abs() < 1e-14);
    }

    #[test]
    fn f32_kernels_mirror_f64() {
        let a: Vec<f32> = vec![1.0, 2.0, 3.0];
        let b: Vec<f32> = vec![4.0, 5.0, 6.0];
        assert_eq!(dot32(&a, &b), 32.0);
        assert!((norm2_32(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let mut y = vec![1.0f32, 1.0];
        axpy32(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        let mut x = vec![3.0f32, 4.0];
        let n = normalize32(&mut x);
        assert!((n - 5.0).abs() < 1e-6);
        assert!((norm2_32(&x) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0f32, 0.0];
        assert_eq!(normalize32(&mut z), 0.0);
    }

    #[test]
    fn dot32_accumulates_in_f64() {
        // 2^24 + 1 is not representable in f32; an f32 accumulator
        // would stall at 2^24 long before this sum finishes
        let ones = vec![1.0f32; (1 << 24) + 64];
        let sum = dot32(&ones, &ones);
        assert_eq!(sum, ones.len() as f64);
    }

    #[test]
    fn resid_norm32_matches_materialized_residual() {
        // 19 elements: exercises the unrolled body and the tail
        let w: Vec<f32> = (0..19).map(|i| ((i as f32) * 0.61).sin()).collect();
        let v: Vec<f32> = (0..19).map(|i| ((i as f32) * 0.37).cos()).collect();
        let lambda = 0.8125f64; // exact in f32
        let mut resid: Vec<f32> = w.clone();
        axpy32(-(lambda as f32), &v, &mut resid);
        let reference = norm2_32(&resid);
        let fused = resid_norm32(&w, &v, lambda);
        assert!((fused - reference).abs() < 1e-6, "{fused} vs {reference}");
        assert_eq!(resid_norm32(&[], &[], 1.0), 0.0);
    }

    #[test]
    fn project_out32_orthogonalizes() {
        let mut u = vec![1.0f32, 1.0];
        normalize32(&mut u);
        let mut x = vec![2.0f32, 0.0];
        project_out32(&mut x, &u);
        assert!(dot32(&x, &u).abs() < 1e-6);
    }

    #[test]
    fn norm_inf_and_sum() {
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert_eq!(sum(&[1.0, 2.0, -0.5]), 2.5);
        assert_eq!(norm_inf(&[]), 0.0);
    }
}
