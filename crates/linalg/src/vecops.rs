//! Dense vector kernels.
//!
//! Plain `f64` slices, no SIMD intrinsics — the hot loops here are
//! memory-bound gathers over the CSR arrays, and the compiler
//! autovectorizes the rest.

/// Dot product. Panics (debug) on length mismatch.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Normalizes `x` to unit Euclidean norm; returns the original norm.
/// A zero vector is left unchanged (returns 0).
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(x, 1.0 / n);
    }
    n
}

/// Removes the component of `x` along the *unit* vector `u`:
/// `x -= (u·x) u`. Returns the removed coefficient.
pub fn project_out(x: &mut [f64], u: &[f64]) -> f64 {
    let c = dot(u, x);
    axpy(-c, u, x);
    c
}

/// Maximum absolute entry (∞-norm).
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Sum of entries.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn normalize_unit() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn project_out_orthogonalizes() {
        let u = {
            let mut u = vec![1.0, 1.0];
            normalize(&mut u);
            u
        };
        let mut x = vec![2.0, 0.0];
        project_out(&mut x, &u);
        assert!(dot(&x, &u).abs() < 1e-14);
    }

    #[test]
    fn norm_inf_and_sum() {
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert_eq!(sum(&[1.0, 2.0, -0.5]), 2.5);
        assert_eq!(norm_inf(&[]), 0.0);
    }
}
