//! Dense symmetric matrices and the cyclic Jacobi eigensolver.
//!
//! O(n³) per sweep, so only for graphs up to a few hundred nodes —
//! this is the *ground truth* the Lanczos and power-iteration paths
//! are property-tested against, not a production path.

use socmix_graph::Graph;

/// A dense symmetric matrix (row-major, square).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// A zero matrix of size `n`.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// From a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n*n`.
    pub fn from_rows(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n);
        DenseMatrix { n, data }
    }

    /// The dense symmetrized walk matrix `S = D^{-1/2} A D^{-1/2}` of a
    /// graph — the spectrum of `P` in dense form, for cross-checks.
    pub fn symmetric_walk_matrix(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut m = DenseMatrix::zeros(n);
        for (u, v) in g.edges() {
            let w = 1.0 / ((g.degree(u) as f64).sqrt() * (g.degree(v) as f64).sqrt());
            m.set(u as usize, v as usize, w);
            m.set(v as usize, u as usize, w);
        }
        m
    }

    /// The dense row-stochastic walk matrix `P = D⁻¹A` (not
    /// symmetric; useful for brute-force distribution evolution in
    /// tests).
    pub fn walk_matrix(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut m = DenseMatrix::zeros(n);
        for u in g.nodes() {
            let d = g.degree(u);
            if d == 0 {
                continue;
            }
            for &v in g.neighbors(u) {
                m.set(u as usize, v as usize, 1.0 / d as f64);
            }
        }
        m
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Sets entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// `y = M·x` (allocating).
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| crate::vecops::dot(&self.data[i * self.n..(i + 1) * self.n], x))
            .collect()
    }

    /// Row-vector product `y = x·M` (what distribution evolution uses
    /// on the non-symmetric `P`).
    pub fn vec_mul(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = &self.data[i * self.n..(i + 1) * self.n];
            for (yj, &mij) in y.iter_mut().zip(row) {
                *yj += xi * mij;
            }
        }
        y
    }

    /// Maximum absolute off-diagonal entry.
    fn max_offdiag(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                m = m.max(self.get(i, j).abs());
            }
        }
        m
    }
}

/// Full symmetric eigendecomposition by cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted
/// **descending** and `eigenvectors[k]` the unit eigenvector for
/// `eigenvalues[k]`.
///
/// # Panics
///
/// Panics if the matrix is not symmetric (beyond 1e-9) or Jacobi
/// fails to converge in 100 sweeps (does not happen for symmetric
/// input).
pub fn jacobi_eigen(m: &DenseMatrix) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = m.dim();
    for i in 0..n {
        for j in (i + 1)..n {
            assert!(
                (m.get(i, j) - m.get(j, i)).abs() < 1e-9,
                "jacobi_eigen requires a symmetric matrix"
            );
        }
    }
    let mut a = m.clone();
    // v: accumulated rotations, starts as identity; v[i*n+j] column j
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let tol = 1e-13;
    for _sweep in 0..100 {
        if a.max_offdiag() < tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() < tol {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                // tangent of rotation angle, stable formula
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // apply rotation G(p,q,θ): A ← GᵀAG
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                // accumulate eigenvectors
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    assert!(
        a.max_offdiag() < 1e-8,
        "jacobi failed to converge (off-diag {})",
        a.max_offdiag()
    );
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a.get(i, i), i)).collect();
    pairs.sort_by(|x, y| y.0.total_cmp(&x.0));
    let eigenvalues: Vec<f64> = pairs.iter().map(|&(l, _)| l).collect();
    let eigenvectors: Vec<Vec<f64>> = pairs
        .iter()
        .map(|&(_, col)| (0..n).map(|row| v[row * n + col]).collect())
        .collect();
    (eigenvalues, eigenvectors)
}

/// SLEM by dense Jacobi: `µ = max(λ₂, −λₙ)` of the walk matrix.
/// Ground truth for graphs small enough to densify.
pub fn slem_dense(g: &Graph) -> f64 {
    let n = g.num_nodes();
    assert!(n >= 2, "SLEM needs at least two nodes");
    let s = DenseMatrix::symmetric_walk_matrix(g);
    let (vals, _) = jacobi_eigen(&s);
    vals[1].max(-vals[n - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use socmix_graph::GraphBuilder;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn jacobi_on_diagonal_matrix() {
        let m = DenseMatrix::from_rows(3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let (vals, vecs) = jacobi_eigen(&m);
        assert_close(vals[0], 3.0, 1e-12);
        assert_close(vals[1], 2.0, 1e-12);
        assert_close(vals[2], 1.0, 1e-12);
        // eigenvector for 3.0 is e0
        assert!(vecs[0][0].abs() > 0.999);
    }

    #[test]
    fn jacobi_on_2x2() {
        // [[2,1],[1,2]] → eigenvalues 3, 1
        let m = DenseMatrix::from_rows(2, vec![2.0, 1.0, 1.0, 2.0]);
        let (vals, vecs) = jacobi_eigen(&m);
        assert_close(vals[0], 3.0, 1e-12);
        assert_close(vals[1], 1.0, 1e-12);
        // residual check: Mv = λv
        for k in 0..2 {
            let mv = m.mul_vec(&vecs[k]);
            for i in 0..2 {
                assert_close(mv[i], vals[k] * vecs[k][i], 1e-10);
            }
        }
    }

    #[test]
    fn jacobi_eigenvectors_orthonormal() {
        // random-ish symmetric matrix
        let n = 6;
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                let v = ((i * 7 + j * 13) % 11) as f64 / 11.0 - 0.4;
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        let (_, vecs) = jacobi_eigen(&m);
        for a in 0..n {
            for b in a..n {
                let d = crate::vecops::dot(&vecs[a], &vecs[b]);
                let expect = if a == b { 1.0 } else { 0.0 };
                assert_close(d, expect, 1e-9);
            }
        }
    }

    #[test]
    fn jacobi_trace_preserved() {
        let n = 5;
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                let v = (((i + 1) * (j + 2)) % 7) as f64;
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        let trace: f64 = (0..n).map(|i| m.get(i, i)).sum();
        let (vals, _) = jacobi_eigen(&m);
        assert_close(vals.iter().sum::<f64>(), trace, 1e-9);
    }

    #[test]
    #[should_panic]
    fn jacobi_rejects_asymmetric() {
        let m = DenseMatrix::from_rows(2, vec![1.0, 2.0, 3.0, 1.0]);
        let _ = jacobi_eigen(&m);
    }

    #[test]
    fn walk_matrix_spectrum_complete_graph() {
        // K_n: eigenvalues of P are 1 and -1/(n-1) (n-1 times)
        let n = 8;
        let mut b = GraphBuilder::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let s = DenseMatrix::symmetric_walk_matrix(&g);
        let (vals, _) = jacobi_eigen(&s);
        assert_close(vals[0], 1.0, 1e-10);
        for &vk in &vals[1..n] {
            assert_close(vk, -1.0 / (n as f64 - 1.0), 1e-10);
        }
        assert_close(slem_dense(&g), 1.0 / (n as f64 - 1.0), 1e-10);
    }

    #[test]
    fn walk_matrix_spectrum_cycle() {
        // C_n: eigenvalues cos(2πk/n)
        let n = 7;
        let g = {
            let mut b = GraphBuilder::new();
            for i in 0..n as u32 {
                b.add_edge(i, (i + 1) % n as u32);
            }
            b.build()
        };
        // spectrum of C_n is cos(2πk/n); for odd n the most negative
        // eigenvalue is −cos(π/n), which dominates cos(2π/n), so
        // µ = cos(π/n)
        let expect_slem = (std::f64::consts::PI / n as f64).cos();
        assert_close(slem_dense(&g), expect_slem, 1e-10);
    }

    #[test]
    fn bipartite_slem_is_one() {
        // K_{3,4}: eigenvalues {1, 0…, -1} → µ = 1
        let g = {
            let mut b = GraphBuilder::new();
            for u in 0..3u32 {
                for v in 0..4u32 {
                    b.add_edge(u, 3 + v);
                }
            }
            b.build()
        };
        assert_close(slem_dense(&g), 1.0, 1e-10);
    }

    #[test]
    fn star_slem_is_one() {
        let g = GraphBuilder::from_edges([(0, 1), (0, 2), (0, 3)]).build();
        assert_close(slem_dense(&g), 1.0, 1e-10);
    }

    #[test]
    fn vec_mul_is_transpose_of_mul_vec() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]).build();
        let p = DenseMatrix::walk_matrix(&g);
        let x = vec![0.1, 0.2, 0.3, 0.4];
        // xP via vec_mul must equal Pᵀx via manual transpose product
        let y = p.vec_mul(&x);
        let mut yt = vec![0.0; 4];
        for (i, &xi) in x.iter().enumerate() {
            for (j, ytj) in yt.iter_mut().enumerate() {
                *ytj += xi * p.get(i, j);
            }
        }
        for (a, b) in y.iter().zip(&yt) {
            assert_close(*a, *b, 1e-14);
        }
    }

    #[test]
    fn dense_walk_rows_are_stochastic() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]).build();
        let p = DenseMatrix::walk_matrix(&g);
        for i in 0..4 {
            let row: f64 = (0..4).map(|j| p.get(i, j)).sum();
            assert_close(row, 1.0, 1e-14);
        }
    }
}
