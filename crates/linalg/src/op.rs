//! Matrix-free linear operators over a CSR graph.
//!
//! Operator applications are the hot path of every measurement in the
//! workspace, so they are engineered to be **allocation-free**: the
//! per-apply scratch (the `z` scale vector of [`WalkOp`] and
//! [`SymmetricWalkOp`], the projected input copy of [`DeflatedOp`])
//! comes from the reusable per-thread pool in [`crate::workspace`],
//! and row chunks are scheduled on `socmix-par`'s persistent worker
//! runtime — no thread spawns, no steady-state heap traffic per
//! apply.

use crate::distributed::DistributedOp;
use crate::kernel::{self, KernelConfig, KernelKind};
use crate::vecops;
use crate::workspace::{with_arena, with_scratch};
use socmix_graph::Graph;
use socmix_obs::Counter;
use socmix_par::Pool;

/// Sparse walk-operator applications (serial kernels; the batched
/// kernel counts separately under `linalg.matvec.multi`).
static MATVECS: Counter = Counter::new("linalg.matvec");
/// Applications routed through the cache-blocked f64 gather.
static BLOCKED_MATVECS: Counter = Counter::new("linalg.matvec.blocked");
/// Applications of the single-precision operators.
static F32_MATVECS: Counter = Counter::new("linalg.matvec.f32");

/// A (square) linear operator applied matrix-free.
///
/// Operators over graphs never materialize a matrix; `apply` computes
/// `y = Op·x` in O(m) with one gather pass over the CSR arrays.
pub trait LinearOp {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = Op · x`. Both slices have length [`LinearOp::dim`].
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Convenience allocating wrapper around [`LinearOp::apply`].
    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y);
        y
    }
}

/// The row-stochastic random-walk operator `P = D⁻¹A`, applied as
/// `y = xP` (distribution evolution, row-vector convention):
/// `y[j] = Σ_{i ∼ j} x[i] / deg(i)`.
///
/// Note `P` is *not* symmetric; its left-multiplication is what
/// distribution evolution needs and what this operator computes.
/// For eigenvalue work use [`SymmetricWalkOp`] (same spectrum).
pub struct WalkOp<'g> {
    graph: &'g Graph,
    pool: Pool,
    kernel: KernelConfig,
    /// scratch: z[i] = x[i] / deg(i)
    inv_deg: Vec<f64>,
    /// The process-sharded twin when `SOCMIX_SHARDS > 1` routes this
    /// operator through worker processes (bitwise-identical results;
    /// `None` means shared-memory kernels only).
    dist: Option<Box<DistributedOp<'g>>>,
}

impl<'g> WalkOp<'g> {
    /// Wraps a graph. Nodes of degree 0 contribute nothing (their
    /// probability mass is dropped — callers should pass connected
    /// graphs, as the mixing time requires).
    pub fn new(graph: &'g Graph) -> Self {
        Self::with_pool(graph, Pool::new())
    }

    /// As [`WalkOp::new`] with an explicit thread pool. The kernel is
    /// taken from the `SOCMIX_KERNEL` environment (scalar by default).
    pub fn with_pool(graph: &'g Graph, pool: Pool) -> Self {
        Self::with_kernel(graph, pool, KernelConfig::from_env())
    }

    /// As [`WalkOp::with_pool`] with an explicit kernel selection.
    pub fn with_kernel(graph: &'g Graph, pool: Pool, kernel: KernelConfig) -> Self {
        let inv_deg = (0..graph.num_nodes())
            .map(|v| {
                let d = graph.degree(v as u32);
                if d == 0 {
                    0.0
                } else {
                    1.0 / d as f64
                }
            })
            .collect();
        WalkOp {
            graph,
            pool,
            kernel,
            inv_deg,
            dist: crate::distributed::auto_route(graph, false),
        }
    }

    /// The process-sharded twin, if the `SOCMIX_SHARDS` backend is
    /// live for this operator.
    pub(crate) fn dist(&self) -> Option<&DistributedOp<'g>> {
        self.dist.as_deref()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The precomputed `1/deg(v)` table (0 for isolated nodes).
    pub fn inv_degrees(&self) -> &[f64] {
        &self.inv_deg
    }

    /// The pool this operator schedules row chunks on.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The kernel configuration in force.
    pub fn kernel(&self) -> KernelConfig {
        self.kernel
    }
}

impl LinearOp for WalkOp<'_> {
    fn dim(&self) -> usize {
        self.graph.num_nodes()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim());
        assert_eq!(y.len(), self.dim());
        MATVECS.incr();
        if let Some(dist) = &self.dist {
            match dist.try_apply(x, y) {
                Ok(()) => return,
                Err(e) => socmix_obs::warn_once!(
                    "shard",
                    "sharded matvec failed ({e}); continuing on the shared-memory kernel"
                ),
            }
        }
        let n = self.dim();
        // z[i] = x[i]/deg(i), then gather: y[j] = Σ_{i∼j} z[i].
        // z lives in the reusable per-thread workspace: no allocation
        // per apply once the pool is warm.
        with_scratch(n, |z| {
            for ((zi, xi), inv) in z.iter_mut().zip(x).zip(&self.inv_deg) {
                *zi = xi * inv;
            }
            let g = self.graph;
            let offsets = g.offsets();
            let targets = g.raw_targets();
            let zref = &*z;
            // Parallel write without locks: chunks own disjoint ranges
            // of y.
            let yptr = SendMut(y.as_mut_ptr());
            let ypref = &yptr;
            match self.kernel.kind {
                KernelKind::Scalar => self.pool.for_each_chunk(n, move |range| {
                    for j in range {
                        let mut acc = 0.0;
                        for &i in &targets[offsets[j]..offsets[j + 1]] {
                            acc += zref[i as usize];
                        }
                        // SAFETY: ranges from for_each_chunk are disjoint.
                        unsafe {
                            *ypref.0.add(j) = acc;
                        }
                    }
                }),
                // the f64 entry point of the F32 config runs the
                // blocked kernel: still bit-for-bit scalar-identical
                KernelKind::Blocked | KernelKind::F32 => {
                    BLOCKED_MATVECS.incr();
                    let tile = self.kernel.col_tile;
                    self.pool.for_each_chunk(n, move |range| {
                        // SAFETY: ranges from for_each_chunk are
                        // disjoint, so this chunk exclusively owns
                        // y[range].
                        let yr = unsafe {
                            std::slice::from_raw_parts_mut(ypref.0.add(range.start), range.len())
                        };
                        kernel::gather_rows_f64(offsets, targets, zref, range, tile, yr, |_, a| a);
                    });
                }
            }
        });
    }
}

/// The symmetric normalization `S = D^{-1/2} A D^{-1/2}`.
///
/// `S = D^{1/2} P D^{-1/2}` is similar to `P`, so it has the same
/// (real) spectrum, and being symmetric it is what Lanczos and Jacobi
/// operate on. Its top eigenvector is known in closed form:
/// `u₁ ∝ D^{1/2} 𝟙` (see [`SymmetricWalkOp::top_eigenvector`]).
pub struct SymmetricWalkOp<'g> {
    graph: &'g Graph,
    pool: Pool,
    kernel: KernelConfig,
    inv_sqrt_deg: Vec<f64>,
    /// The process-sharded twin when `SOCMIX_SHARDS > 1` is live
    /// (bitwise-identical results; `None` = shared-memory only).
    dist: Option<Box<DistributedOp<'g>>>,
}

impl<'g> SymmetricWalkOp<'g> {
    /// Wraps a graph.
    pub fn new(graph: &'g Graph) -> Self {
        Self::with_pool(graph, Pool::new())
    }

    /// As [`SymmetricWalkOp::new`] with an explicit thread pool. The
    /// kernel is taken from the `SOCMIX_KERNEL` environment.
    pub fn with_pool(graph: &'g Graph, pool: Pool) -> Self {
        Self::with_kernel(graph, pool, KernelConfig::from_env())
    }

    /// As [`SymmetricWalkOp::with_pool`] with an explicit kernel.
    pub fn with_kernel(graph: &'g Graph, pool: Pool, kernel: KernelConfig) -> Self {
        let inv_sqrt_deg = (0..graph.num_nodes())
            .map(|v| {
                let d = graph.degree(v as u32);
                if d == 0 {
                    0.0
                } else {
                    1.0 / (d as f64).sqrt()
                }
            })
            .collect();
        SymmetricWalkOp {
            graph,
            pool,
            kernel,
            inv_sqrt_deg,
            dist: crate::distributed::auto_route(graph, true),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The unit eigenvector of `S` for λ₁ = 1: `D^{1/2}𝟙 / ‖D^{1/2}𝟙‖`,
    /// i.e. `u₁[v] = √deg(v) / √(2m)`.
    pub fn top_eigenvector(&self) -> Vec<f64> {
        let total = self.graph.total_degree() as f64;
        (0..self.graph.num_nodes())
            .map(|v| (self.graph.degree(v as u32) as f64 / total).sqrt())
            .collect()
    }

    /// The kernel configuration in force.
    pub fn kernel(&self) -> KernelConfig {
        self.kernel
    }
}

impl LinearOp for SymmetricWalkOp<'_> {
    fn dim(&self) -> usize {
        self.graph.num_nodes()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim());
        assert_eq!(y.len(), self.dim());
        MATVECS.incr();
        if let Some(dist) = &self.dist {
            match dist.try_apply(x, y) {
                Ok(()) => return,
                Err(e) => socmix_obs::warn_once!(
                    "shard",
                    "sharded matvec failed ({e}); continuing on the shared-memory kernel"
                ),
            }
        }
        let n = self.dim();
        // y[i] = (1/√deg i) Σ_{j∼i} x[j]/√deg j — z reused from the
        // per-thread workspace like the plain walk kernel.
        with_scratch(n, |z| {
            for ((zi, xi), inv) in z.iter_mut().zip(x).zip(&self.inv_sqrt_deg) {
                *zi = xi * inv;
            }
            let g = self.graph;
            let offsets = g.offsets();
            let targets = g.raw_targets();
            let zref = &*z;
            let inv = &self.inv_sqrt_deg;
            let yptr = SendMut(y.as_mut_ptr());
            let ypref = &yptr;
            match self.kernel.kind {
                KernelKind::Scalar => self.pool.for_each_chunk(n, move |range| {
                    for i in range {
                        let mut acc = 0.0;
                        for &j in &targets[offsets[i]..offsets[i + 1]] {
                            acc += zref[j as usize];
                        }
                        // SAFETY: ranges from for_each_chunk are disjoint.
                        unsafe {
                            *ypref.0.add(i) = acc * inv[i];
                        }
                    }
                }),
                KernelKind::Blocked | KernelKind::F32 => {
                    BLOCKED_MATVECS.incr();
                    let tile = self.kernel.col_tile;
                    self.pool.for_each_chunk(n, move |range| {
                        // SAFETY: ranges from for_each_chunk are
                        // disjoint, so this chunk exclusively owns
                        // y[range].
                        let yr = unsafe {
                            std::slice::from_raw_parts_mut(ypref.0.add(range.start), range.len())
                        };
                        kernel::gather_rows_f64(offsets, targets, zref, range, tile, yr, |i, a| {
                            a * inv[i]
                        });
                    });
                }
            }
        });
    }
}

/// The lazy variant `(I + Op) / 2`.
///
/// Shifts the spectrum to `[0, 1]`, killing periodicity: the lazy walk
/// on a bipartite graph still converges. Used when the Markov layer
/// detects bipartiteness.
pub struct LazyOp<Op> {
    inner: Op,
}

impl<Op: LinearOp> LazyOp<Op> {
    /// Wraps an operator.
    pub fn new(inner: Op) -> Self {
        LazyOp { inner }
    }

    /// The wrapped operator.
    pub fn inner(&self) -> &Op {
        &self.inner
    }
}

impl<Op: LinearOp> LinearOp for LazyOp<Op> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = 0.5 * (*yi + xi);
        }
    }
}

/// Deflation wrapper: applies `Op` restricted to the orthogonal
/// complement of a set of known *unit* eigenvectors.
///
/// Both the input and the output are projected, so iterating this
/// operator converges to the extreme eigenvalues of the complement —
/// for [`SymmetricWalkOp`] with `u₁` deflated, that is exactly
/// `λ₂` (top) and `λₙ` (bottom), the two ingredients of the SLEM.
pub struct DeflatedOp<'a, Op> {
    inner: Op,
    basis: &'a [Vec<f64>],
}

impl<'a, Op: LinearOp> DeflatedOp<'a, Op> {
    /// Wraps `inner`, deflating the span of `basis` (each vector must
    /// be unit-norm; vectors should be mutually orthogonal).
    pub fn new(inner: Op, basis: &'a [Vec<f64>]) -> Self {
        for b in basis {
            debug_assert_eq!(b.len(), inner.dim());
            debug_assert!((vecops::norm2(b) - 1.0).abs() < 1e-8, "basis must be unit");
        }
        DeflatedOp { inner, basis }
    }

    /// Projects `x` onto the orthogonal complement of the basis.
    pub fn project(&self, x: &mut [f64]) {
        for b in self.basis {
            vecops::project_out(x, b);
        }
    }
}

impl<Op: LinearOp> LinearOp for DeflatedOp<'_, Op> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        // The projected input copy comes from the per-thread
        // workspace; the nested inner apply checks out its own buffer.
        with_scratch(x.len(), |xp| {
            xp.copy_from_slice(x);
            self.project(xp);
            self.inner.apply(xp, y);
        });
        self.project(y);
    }
}

/// A dense operator for tests and small cross-checks.
pub struct DenseOp {
    /// Row-major `n×n`.
    pub data: Vec<f64>,
    pub n: usize,
}

impl LinearOp for DenseOp {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for (i, yi) in y.iter_mut().enumerate().take(self.n) {
            *yi = vecops::dot(&self.data[i * self.n..(i + 1) * self.n], x);
        }
    }
}

/// A (square) linear operator applied matrix-free in **f32**.
///
/// The single-precision side of the mixed-precision drivers
/// ([`crate::power::power_iteration_mixed`],
/// [`crate::lanczos::lanczos_extreme_mixed`]): iterations run here,
/// final answers are polished through the paired f64 operator. Unlike
/// [`LinearOp`], implementations are free to reassociate sums — the
/// contract is a tolerance (µ within 1e-6 of the f64 answer), not
/// bit-reproducibility against f64. For a fixed input the result is
/// still deterministic and pool-width independent: each output row's
/// accumulation order is fixed, only row scheduling varies.
pub trait LinearOpF32 {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = Op · x` in f32.
    fn apply32(&self, x: &[f32], y: &mut [f32]);

    /// Convenience allocating wrapper around [`LinearOpF32::apply32`].
    fn apply_vec32(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.dim()];
        self.apply32(x, &mut y);
        y
    }
}

/// Single-precision twin of [`SymmetricWalkOp`], built from the same
/// graph and pool for the mixed-precision drivers.
pub struct SymmetricWalkOpF32<'g> {
    graph: &'g Graph,
    pool: Pool,
    col_tile: usize,
    inv_sqrt_deg: Vec<f32>,
}

impl<'g> SymmetricWalkOpF32<'g> {
    /// Wraps a graph with an explicit pool and blocking geometry
    /// (only `col_tile` of the config matters here — this operator
    /// *is* the f32 kernel).
    pub fn with_kernel(graph: &'g Graph, pool: Pool, kernel: KernelConfig) -> Self {
        let inv_sqrt_deg = (0..graph.num_nodes())
            .map(|v| {
                let d = graph.degree(v as u32);
                if d == 0 {
                    0.0
                } else {
                    (1.0 / (d as f64).sqrt()) as f32
                }
            })
            .collect();
        SymmetricWalkOpF32 {
            graph,
            pool,
            col_tile: kernel.col_tile,
            inv_sqrt_deg,
        }
    }

    /// The top eigenvector `u₁ = D^{1/2}𝟙 / ‖·‖` in f32 (computed in
    /// f64, rounded once).
    pub fn top_eigenvector32(&self) -> Vec<f32> {
        let total = self.graph.total_degree() as f64;
        (0..self.graph.num_nodes())
            .map(|v| (self.graph.degree(v as u32) as f64 / total).sqrt() as f32)
            .collect()
    }
}

impl LinearOpF32 for SymmetricWalkOpF32<'_> {
    fn dim(&self) -> usize {
        self.graph.num_nodes()
    }

    fn apply32(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.dim());
        assert_eq!(y.len(), self.dim());
        F32_MATVECS.incr();
        let n = self.dim();
        with_arena(|arena| {
            let z = arena.alloc_f32(n);
            for ((zi, xi), inv) in z.iter_mut().zip(x).zip(&self.inv_sqrt_deg) {
                *zi = xi * inv;
            }
            let g = self.graph;
            let offsets = g.offsets();
            let targets = g.raw_targets();
            let zref = &*z;
            let inv = &self.inv_sqrt_deg;
            let tile = self.col_tile;
            let yptr = SendMutF32(y.as_mut_ptr());
            let ypref = &yptr;
            self.pool.for_each_chunk(n, move |range| {
                // SAFETY: ranges from for_each_chunk are disjoint, so
                // this chunk exclusively owns y[range].
                let yr = unsafe {
                    std::slice::from_raw_parts_mut(ypref.0.add(range.start), range.len())
                };
                kernel::gather_rows_f32(offsets, targets, zref, range, tile, yr, |i, a| a * inv[i]);
            });
        });
    }
}

/// Single-precision twin of [`DeflatedOp`]: projections in f32 with
/// f64-accumulated coefficients.
pub struct DeflatedOpF32<'a, Op> {
    inner: Op,
    basis: &'a [Vec<f32>],
}

impl<'a, Op: LinearOpF32> DeflatedOpF32<'a, Op> {
    /// Wraps `inner`, deflating the span of the (unit) f32 `basis`.
    pub fn new(inner: Op, basis: &'a [Vec<f32>]) -> Self {
        for b in basis {
            debug_assert_eq!(b.len(), inner.dim());
            debug_assert!(
                (vecops::norm2_32(b) - 1.0).abs() < 1e-4,
                "basis must be unit"
            );
        }
        DeflatedOpF32 { inner, basis }
    }

    /// Projects `x` onto the orthogonal complement of the basis.
    pub fn project32(&self, x: &mut [f32]) {
        for b in self.basis {
            vecops::project_out32(x, b);
        }
    }
}

impl<Op: LinearOpF32> LinearOpF32 for DeflatedOpF32<'_, Op> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    /// Applies `P·inner` (output-side projection only). The f64
    /// [`DeflatedOp`] applies the full `P·inner·P`; here the input
    /// projection is dropped because it buys nothing the tolerance
    /// contract can measure: deflation presumes the basis spans an
    /// invariant subspace of `inner` (`S·b ≈ b` for the walk
    /// operator's top eigenvector), so for `x = x⊥ + c·b` the skipped
    /// term is `P·S·(c·b) = c·P·b + O(c·ε) = O(c·ε)` — f32 noise. On
    /// the complement itself (where every projected output, hence
    /// every power/Lanczos iterate, lives) the two operators are
    /// identical. Skipping it saves an O(n) copy and projection per
    /// matvec in the mixed drivers' hot loop.
    fn apply32(&self, x: &[f32], y: &mut [f32]) {
        self.inner.apply32(x, y);
        self.project32(y);
    }
}

/// Raw-pointer wrapper so disjoint chunks can write one output slice
/// without a lock (same pattern as `socmix-par`'s map).
struct SendMut(*mut f64);
// SAFETY: workers write through `base.add(i)` only for row indices
// `i` in their own chunk, and chunks partition the output slice, so
// the pointer never produces overlapping mutable access; `f64` is
// trivially sendable.
unsafe impl Send for SendMut {}
// SAFETY: shared copies carry only the base address; disjointness of
// the written rows (Send argument above) rules out aliased `&mut`.
unsafe impl Sync for SendMut {}

/// f32 counterpart of [`SendMut`] for the single-precision kernels.
struct SendMutF32(*mut f32);
// SAFETY: workers write through `base.add(i)` only for row indices in
// their own chunk, and chunks partition the output slice, so the
// pointer never produces overlapping mutable access.
unsafe impl Send for SendMutF32 {}
// SAFETY: shared copies carry only the base address; disjointness of
// the written rows (Send argument above) rules out aliased `&mut`.
unsafe impl Sync for SendMutF32 {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops::{dot, norm2};
    use socmix_graph::GraphBuilder;

    fn path3() -> Graph {
        GraphBuilder::from_edges([(0, 1), (1, 2)]).build()
    }

    #[test]
    fn walk_op_preserves_probability_mass() {
        let g = path3();
        let op = WalkOp::new(&g);
        let x = vec![0.2, 0.5, 0.3];
        let y = op.apply_vec(&x);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn walk_op_path_step() {
        let g = path3();
        let op = WalkOp::new(&g);
        // start at node 0: all mass moves to node 1
        let y = op.apply_vec(&[1.0, 0.0, 0.0]);
        assert_eq!(y, vec![0.0, 1.0, 0.0]);
        // start at node 1: splits to 0 and 2
        let y = op.apply_vec(&[0.0, 1.0, 0.0]);
        assert!((y[0] - 0.5).abs() < 1e-15 && (y[2] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn stationary_is_fixed_point_of_walk_op() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]).build();
        let op = WalkOp::new(&g);
        let total = g.total_degree() as f64;
        let pi: Vec<f64> = g.nodes().map(|v| g.degree(v) as f64 / total).collect();
        let y = op.apply_vec(&pi);
        for (a, b) in y.iter().zip(&pi) {
            assert!((a - b).abs() < 1e-14, "πP ≠ π");
        }
    }

    #[test]
    fn symmetric_op_is_symmetric() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]).build();
        let op = SymmetricWalkOp::new(&g);
        let n = op.dim();
        // check <Sx, y> == <x, Sy> for a few vector pairs
        for k in 0..3 {
            let x: Vec<f64> = (0..n).map(|i| ((i + k) as f64).sin()).collect();
            let y: Vec<f64> = (0..n).map(|i| ((2 * i + k) as f64).cos()).collect();
            let sx = op.apply_vec(&x);
            let sy = op.apply_vec(&y);
            assert!((dot(&sx, &y) - dot(&x, &sy)).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_op_top_eigenvector_is_fixed() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0), (0, 3)]).build();
        let op = SymmetricWalkOp::new(&g);
        let u1 = op.top_eigenvector();
        assert!((norm2(&u1) - 1.0).abs() < 1e-12);
        let y = op.apply_vec(&u1);
        for (a, b) in y.iter().zip(&u1) {
            assert!((a - b).abs() < 1e-12, "S·u₁ ≠ u₁");
        }
    }

    #[test]
    fn lazy_op_halves_spectrum() {
        let g = path3();
        let op = LazyOp::new(WalkOp::new(&g));
        // lazy step from node 0: half stays, half moves to 1
        let y = op.apply_vec(&[1.0, 0.0, 0.0]);
        assert!((y[0] - 0.5).abs() < 1e-15);
        assert!((y[1] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn deflated_op_annihilates_basis() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0)]).build();
        let op = SymmetricWalkOp::new(&g);
        let basis = vec![op.top_eigenvector()];
        let defl = DeflatedOp::new(SymmetricWalkOp::new(&g), &basis);
        let y = defl.apply_vec(&basis[0]);
        assert!(norm2(&y) < 1e-12, "deflated operator must kill u₁");
    }

    #[test]
    fn deflated_output_is_orthogonal_to_basis() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).build();
        let sop = SymmetricWalkOp::new(&g);
        let basis = vec![sop.top_eigenvector()];
        let defl = DeflatedOp::new(sop, &basis);
        let x: Vec<f64> = (0..g.num_nodes()).map(|i| (i as f64) - 1.7).collect();
        let y = defl.apply_vec(&x);
        assert!(dot(&y, &basis[0]).abs() < 1e-12);
    }

    #[test]
    fn dense_op_matches_manual() {
        let op = DenseOp {
            data: vec![1.0, 2.0, 3.0, 4.0],
            n: 2,
        };
        assert_eq!(op.apply_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn blocked_kernel_is_bitwise_scalar() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)]).build();
        let n = g.num_nodes();
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) + 0.3).sin()).collect();
        let pool = socmix_par::Pool::serial();
        for mk in [KernelConfig::blocked(), KernelConfig::mixed_f32()] {
            // force the multi-tile path with a tiny tile as well
            for cfg in [mk, mk.col_tile(2)] {
                let scalar = SymmetricWalkOp::with_kernel(&g, pool, KernelConfig::scalar());
                let blocked = SymmetricWalkOp::with_kernel(&g, pool, cfg);
                let a = scalar.apply_vec(&x);
                let b = blocked.apply_vec(&x);
                for (av, bv) in a.iter().zip(&b) {
                    assert_eq!(av.to_bits(), bv.to_bits(), "{cfg:?}");
                }
                let ws = WalkOp::with_kernel(&g, pool, KernelConfig::scalar());
                let wb = WalkOp::with_kernel(&g, pool, cfg);
                let a = ws.apply_vec(&x);
                let b = wb.apply_vec(&x);
                for (av, bv) in a.iter().zip(&b) {
                    assert_eq!(av.to_bits(), bv.to_bits(), "{cfg:?}");
                }
            }
        }
    }

    #[test]
    fn f32_op_tracks_f64_within_tolerance() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)]).build();
        let n = g.num_nodes();
        let pool = socmix_par::Pool::serial();
        let op64 = SymmetricWalkOp::with_kernel(&g, pool, KernelConfig::scalar());
        let op32 = SymmetricWalkOpF32::with_kernel(&g, pool, KernelConfig::mixed_f32());
        let x64: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).cos()).collect();
        let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
        let y64 = op64.apply_vec(&x64);
        let y32 = op32.apply_vec32(&x32);
        for (a, b) in y64.iter().zip(&y32) {
            assert!((a - f64::from(*b)).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn f32_op_is_pool_width_independent() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)]).build();
        let n = g.num_nodes();
        let x: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.9).sin()).collect();
        let cfg = KernelConfig::mixed_f32();
        let serial =
            SymmetricWalkOpF32::with_kernel(&g, socmix_par::Pool::serial(), cfg).apply_vec32(&x);
        let par = SymmetricWalkOpF32::with_kernel(&g, socmix_par::Pool::with_threads(4), cfg)
            .apply_vec32(&x);
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn deflated_f32_annihilates_basis() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0)]).build();
        let pool = socmix_par::Pool::serial();
        let op = SymmetricWalkOpF32::with_kernel(&g, pool, KernelConfig::mixed_f32());
        let basis = vec![op.top_eigenvector32()];
        let defl = DeflatedOpF32::new(
            SymmetricWalkOpF32::with_kernel(&g, pool, KernelConfig::mixed_f32()),
            &basis,
        );
        let y = defl.apply_vec32(&basis[0]);
        assert!(vecops::norm2_32(&y) < 1e-5, "deflated f32 op must kill u₁");
    }

    #[test]
    fn walk_op_handles_isolated_nodes() {
        let mut b = GraphBuilder::from_edges([(0, 1)]);
        b.grow_to(3);
        let g = b.build();
        let op = WalkOp::new(&g);
        let y = op.apply_vec(&[0.0, 0.0, 1.0]);
        // isolated node's mass is dropped, not NaN
        assert!(y.iter().all(|v| v.is_finite()));
        assert_eq!(y, vec![0.0, 0.0, 0.0]);
    }
}
