//! Matvec kernel selection and the cache-blocked CSR gather kernels.
//!
//! The CSR gather `y[j] = Σ_{i∼j} z[i]` is the hardware-bound inner
//! loop of every measurement in the workspace. This module provides
//! the alternatives behind the [`KernelConfig`] knob:
//!
//! - **Scalar** — the baseline loop in [`crate::op`], unchanged.
//! - **Blocked** — row-segmented, column-tiled `f64` gather: rows are
//!   processed in fixed segments with one cursor per row, and the
//!   sorted adjacency of each row is consumed in ascending column
//!   tiles, so the tile of `z` being gathered stays cache-resident
//!   while the CSR stream passes through once. Because adjacency
//!   lists are sorted (a `Graph` invariant) the per-row accumulation
//!   order is exactly the scalar order — results are **bit-for-bit**
//!   identical to the scalar kernel, so the determinism contract is
//!   preserved. Inner loops use unchecked indexing justified by the
//!   CSR invariants.
//! - **F32** — single-precision gather. The f64 contract forbids
//!   reassociation, which chains every add through one
//!   ~4-cycle-latency dependency; the f32 path trades
//!   bit-reproducibility against f64 for a tolerance contract (see
//!   [`crate::power::power_iteration_mixed`]) and may therefore break
//!   the chain. On x86-64 with AVX-512F the row sum runs as 16-lane
//!   hardware gathers (`vgatherdps`), which keeps ~16 cache misses in
//!   flight per row instead of the handful the scalar load loop
//!   manages — the gather into a vector scattered across L2 is
//!   latency-bound, so that memory-level parallelism (plus halved
//!   traffic) is where the speedup comes from. Elsewhere it falls
//!   back to four independent scalar accumulators per row.
//!
//! This is one of the workspace's designated knob modules: the
//! `SOCMIX_KERNEL` environment read lives here (and only here) so the
//! stray-env-read lint keeps every other crate honest.

use crate::workspace::with_arena;
use std::ops::Range;

/// Default column-tile width (entries of `z`) for the blocked kernels:
/// 128 Ki `f64` = 1 MiB, sized to keep a tile resident in a ~2 MiB L2
/// alongside the CSR stream and output rows.
pub const DEFAULT_COL_TILE: usize = 1 << 17;

/// Rows per blocked segment. Bounds the per-segment cursor and
/// accumulator state (2 KiB of cursors) so it lives in L1 across tile
/// passes.
const SEG_ROWS: usize = 256;

/// Which matvec kernel the operators run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// The baseline scalar loop (bit-for-bit reference).
    #[default]
    Scalar,
    /// Cache-blocked f64 gather — bit-for-bit identical to `Scalar`.
    Blocked,
    /// Mixed precision: f32 iterations with f64 polish. f64 entry
    /// points behave as `Blocked` (still bit-for-bit); drivers that
    /// have a mixed path run it (tolerance contract: µ within 1e-6).
    F32,
}

/// Kernel selection plus blocking geometry, threaded through the
/// operators by value (it is `Copy`, like `Pool`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Which kernel family to run.
    pub kind: KernelKind,
    /// Column-tile width for the blocked kernels, in entries of the
    /// gathered vector. Tests force tiny tiles to exercise the
    /// multi-tile path on small fixtures.
    pub col_tile: usize,
}

impl KernelConfig {
    /// The baseline scalar kernel.
    pub fn scalar() -> Self {
        Self::of(KernelKind::Scalar)
    }

    /// The cache-blocked f64 kernel.
    pub fn blocked() -> Self {
        Self::of(KernelKind::Blocked)
    }

    /// The mixed-precision f32 path.
    pub fn mixed_f32() -> Self {
        Self::of(KernelKind::F32)
    }

    /// A config of the given kind with the default tile width.
    pub fn of(kind: KernelKind) -> Self {
        KernelConfig {
            kind,
            col_tile: DEFAULT_COL_TILE,
        }
    }

    /// Overrides the column-tile width (clamped to at least 1).
    pub fn col_tile(mut self, tile: usize) -> Self {
        self.col_tile = tile.max(1);
        self
    }

    /// The kernel selected by the `SOCMIX_KERNEL` environment variable
    /// (`scalar`, `blocked`, or `f32`); scalar when unset. Invalid
    /// values warn once and fall back.
    pub fn from_env() -> Self {
        Self::of(kind_from_env(
            std::env::var("SOCMIX_KERNEL").ok().as_deref(),
        ))
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::scalar()
    }
}

fn kind_from_env(raw: Option<&str>) -> KernelKind {
    if let Some(v) = raw {
        match parse_kind(v) {
            Some(k) => return k,
            None => socmix_obs::warn_once!(
                "linalg.kernel",
                "ignoring invalid SOCMIX_KERNEL={v:?}: expected scalar, blocked, or f32, \
                 falling back to the scalar kernel"
            ),
        }
    }
    KernelKind::Scalar
}

fn parse_kind(v: &str) -> Option<KernelKind> {
    match v.trim().to_ascii_lowercase().as_str() {
        "scalar" => Some(KernelKind::Scalar),
        "blocked" => Some(KernelKind::Blocked),
        "f32" => Some(KernelKind::F32),
        _ => None,
    }
}

/// Blocked f64 gather over `rows`: for each row `j`,
/// `y[j - rows.start] = finish(j, Σ_k z[targets[k]])` with `k` ranging
/// over the row's CSR slice in storage (= ascending-column) order, so
/// the sum is bitwise the scalar kernel's.
///
/// `y` must have length `rows.len()`. When the whole vector fits one
/// tile the cursor machinery is skipped entirely.
pub(crate) fn gather_rows_f64(
    offsets: &[usize],
    targets: &[u32],
    z: &[f64],
    rows: Range<usize>,
    col_tile: usize,
    y: &mut [f64],
    finish: impl Fn(usize, f64) -> f64,
) {
    debug_assert_eq!(y.len(), rows.len());
    let n = z.len();
    if n <= col_tile {
        for (out, j) in y.iter_mut().zip(rows) {
            let mut acc = 0.0;
            for k in offsets[j]..offsets[j + 1] {
                // SAFETY: CSR invariants — `offsets[j+1] ≤ targets.len()`
                // and every stored target id is `< n = z.len()`
                // (`GraphBuilder::build` guarantees both).
                unsafe {
                    acc += *z.get_unchecked(*targets.get_unchecked(k) as usize);
                }
            }
            *out = finish(j, acc);
        }
        return;
    }
    let row0 = rows.start;
    let mut seg = rows.start;
    while seg < rows.end {
        let seg_end = (seg + SEG_ROWS).min(rows.end);
        let m = seg_end - seg;
        let mut acc = [0.0f64; SEG_ROWS];
        let mut cur = [0usize; SEG_ROWS];
        for (c, j) in cur.iter_mut().zip(seg..seg_end) {
            *c = offsets[j];
        }
        // ascending column tiles; each row's cursor advances through
        // its sorted adjacency exactly once across all tiles, so the
        // per-row accumulation order equals the scalar kernel's
        let mut t0 = 0usize;
        while t0 < n {
            let t1 = (t0 + col_tile).min(n);
            for r in 0..m {
                let end = offsets[seg + r + 1];
                let mut k = cur[r];
                let mut a = acc[r];
                if t1 == n {
                    while k < end {
                        // SAFETY: `k < offsets[j+1] ≤ targets.len()`,
                        // and target ids are `< n = z.len()` (CSR
                        // invariants from `GraphBuilder::build`).
                        unsafe {
                            a += *z.get_unchecked(*targets.get_unchecked(k) as usize);
                        }
                        k += 1;
                    }
                } else {
                    while k < end {
                        // SAFETY: same CSR bounds argument as above.
                        let t = unsafe { *targets.get_unchecked(k) } as usize;
                        if t >= t1 {
                            break;
                        }
                        // SAFETY: `t < t1 ≤ n = z.len()`.
                        a += unsafe { *z.get_unchecked(t) };
                        k += 1;
                    }
                }
                acc[r] = a;
                cur[r] = k;
            }
            t0 = t1;
        }
        for r in 0..m {
            y[seg + r - row0] = finish(seg + r, acc[r]);
        }
        seg = seg_end;
    }
}

/// f32 gather over `rows`. Unlike the f64 kernels this one is free to
/// reassociate: on AVX-512 hardware each row sum runs as 16-lane
/// vector gathers (see [`avx512`]); elsewhere four independent
/// accumulators per row break the FP-add latency chain. Either way
/// the per-row instruction sequence depends only on the row, so
/// results are bitwise identical across pool widths on a given
/// machine.
pub(crate) fn gather_rows_f32(
    offsets: &[usize],
    targets: &[u32],
    z: &[f32],
    rows: Range<usize>,
    col_tile: usize,
    y: &mut [f32],
    finish: impl Fn(usize, f32) -> f32,
) {
    debug_assert_eq!(y.len(), rows.len());
    let n = z.len();
    if n <= col_tile.saturating_mul(2) {
        // an f32 tile holds twice the entries of an f64 tile per byte
        #[cfg(target_arch = "x86_64")]
        if avx512::available() {
            for (out, j) in y.iter_mut().zip(rows.clone()) {
                // SAFETY: `available()` just confirmed AVX-512F at
                // runtime, and the CSR invariants from
                // `GraphBuilder::build` give `offsets[j+1] ≤
                // targets.len()` with every target id `< n = z.len()`.
                let sum = unsafe { avx512::row_sum(targets, offsets[j], offsets[j + 1], z) };
                *out = finish(j, sum);
            }
            return;
        }
        for (out, j) in y.iter_mut().zip(rows) {
            let end = offsets[j + 1];
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            let mut k = offsets[j];
            while k + 4 <= end {
                // SAFETY: `k+3 < offsets[j+1] ≤ targets.len()` and
                // target ids are `< n = z.len()` (CSR invariants from
                // `GraphBuilder::build`).
                unsafe {
                    a0 += *z.get_unchecked(*targets.get_unchecked(k) as usize);
                    a1 += *z.get_unchecked(*targets.get_unchecked(k + 1) as usize);
                    a2 += *z.get_unchecked(*targets.get_unchecked(k + 2) as usize);
                    a3 += *z.get_unchecked(*targets.get_unchecked(k + 3) as usize);
                }
                k += 4;
            }
            while k < end {
                // SAFETY: same CSR bounds argument as above.
                unsafe {
                    a0 += *z.get_unchecked(*targets.get_unchecked(k) as usize);
                }
                k += 1;
            }
            *out = finish(j, (a0 + a1) + (a2 + a3));
        }
        return;
    }
    // huge-n fallback: the same cursor/tile walk as the f64 kernel
    // (single accumulator; at these sizes the win is locality, and
    // the f32 contract does not require any particular order)
    let row0 = rows.start;
    let mut seg = rows.start;
    while seg < rows.end {
        let seg_end = (seg + SEG_ROWS).min(rows.end);
        let m = seg_end - seg;
        let mut acc = [0.0f32; SEG_ROWS];
        let mut cur = [0usize; SEG_ROWS];
        for (c, j) in cur.iter_mut().zip(seg..seg_end) {
            *c = offsets[j];
        }
        let tile = col_tile * 2;
        let mut t0 = 0usize;
        while t0 < n {
            let t1 = (t0 + tile).min(n);
            for r in 0..m {
                let end = offsets[seg + r + 1];
                let mut k = cur[r];
                let mut a = acc[r];
                while k < end {
                    // SAFETY: `k < offsets[j+1] ≤ targets.len()` (CSR
                    // invariants from `GraphBuilder::build`).
                    let t = unsafe { *targets.get_unchecked(k) } as usize;
                    if t >= t1 {
                        break;
                    }
                    // SAFETY: `t < t1 ≤ n = z.len()`.
                    a += unsafe { *z.get_unchecked(t) };
                    k += 1;
                }
                acc[r] = a;
                cur[r] = k;
            }
            t0 = t1;
        }
        for r in 0..m {
            y[seg + r - row0] = finish(seg + r, acc[r]);
        }
        seg = seg_end;
    }
}

/// Blocked batched gather for [`crate::multivec`]: per row `j` of
/// `rows`, accumulates `Σ_i x[i, c] · inv[i]` over the row's sorted
/// adjacency into `y[(j - rows.start) · stride + c]` for every active
/// column `c < width`.
///
/// The per-row, per-column operation sequence (`acc += x·inv`, columns
/// innermost, neighbors ascending) is exactly the scalar batched
/// kernel's, so results stay bit-for-bit identical — the tiling only
/// changes *when* each neighbor row is visited, never the order within
/// one output row.
//
// Nine arguments because this is a leaf kernel mirroring the CSR and
// batch layout verbatim; bundling them into a struct would only move
// the list one call up.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gather_rows_multi_f64(
    offsets: &[usize],
    targets: &[u32],
    inv: &[f64],
    xs: &[f64],
    stride: usize,
    width: usize,
    rows: Range<usize>,
    col_tile: usize,
    y: &mut [f64],
) {
    debug_assert_eq!(y.len(), rows.len() * stride);
    let n = inv.len();
    // callers pass the tile already scaled for the row footprint
    // (gathering `width` columns touches width·8 bytes per x-row)
    let tile = col_tile.max(1);
    with_arena(|arena| {
        let acc = arena.alloc_f64(SEG_ROWS * width);
        let row0 = rows.start;
        let mut seg = rows.start;
        while seg < rows.end {
            let seg_end = (seg + SEG_ROWS).min(rows.end);
            let m = seg_end - seg;
            acc[..m * width].fill(0.0);
            let mut cur = [0usize; SEG_ROWS];
            for (c, j) in cur.iter_mut().zip(seg..seg_end) {
                *c = offsets[j];
            }
            let mut t0 = 0usize;
            while t0 < n {
                let t1 = (t0 + tile).min(n);
                for r in 0..m {
                    let end = offsets[seg + r + 1];
                    let a = &mut acc[r * width..(r + 1) * width];
                    let mut k = cur[r];
                    while k < end {
                        let i = targets[k] as usize;
                        if i >= t1 {
                            break;
                        }
                        let d = inv[i];
                        let xr = &xs[i * stride..i * stride + width];
                        // per column the exact two-op sequence of the
                        // serial kernel: multiply, then accumulate
                        for (av, &xv) in a.iter_mut().zip(xr) {
                            *av += xv * d;
                        }
                        k += 1;
                    }
                    cur[r] = k;
                }
                t0 = t1;
            }
            for r in 0..m {
                y[(seg + r - row0) * stride..(seg + r - row0) * stride + width]
                    .copy_from_slice(&acc[r * width..r * width + width]);
            }
            seg = seg_end;
        }
    });
}

/// The AVX-512F row-sum kernel for [`gather_rows_f32`]. Compiled only
/// on x86-64 and entered only after [`avx512::available`] confirms the
/// feature at runtime; every other target takes the scalar
/// four-accumulator path.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use std::arch::x86_64::*;

    /// Whether the AVX-512F gather may run. `is_x86_feature_detected!`
    /// caches the CPUID probe, so callers hoist this once per gather
    /// call, not per row.
    #[inline]
    pub(super) fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
    }

    /// Sums `z[targets[k] as usize]` for `k` in `s..e` using 16-lane
    /// hardware gathers with a masked tail, then one horizontal
    /// reduction. Reassociates freely — f32-contract only.
    ///
    /// # Safety
    /// The caller must guarantee that AVX-512F is available (check
    /// [`available`] first), that `s ≤ e ≤ targets.len()`, and that
    /// every `targets[s..e]` is `< z.len()`.
    #[target_feature(enable = "avx512f")]
    // SAFETY: caller contract (see `# Safety` above) — AVX-512F
    // confirmed via `available()`, `s ≤ e ≤ targets.len()`, and every
    // `targets[s..e]` indexes below `z.len()`.
    pub(super) unsafe fn row_sum(targets: &[u32], s: usize, e: usize, z: &[f32]) -> f32 {
        // SAFETY: the loads at `targets.as_ptr().add(k)` stay in
        // bounds because `k + 16 ≤ e ≤ targets.len()` (masked tail:
        // `k + popcount(m) = e`), and every gathered lane indexes
        // `z` below `z.len()` by the caller's contract.
        unsafe {
            let mut acc = _mm512_setzero_ps();
            let mut k = s;
            while k + 16 <= e {
                let idx = _mm512_loadu_si512(targets.as_ptr().add(k) as *const _);
                acc = _mm512_add_ps(acc, _mm512_i32gather_ps::<4>(idx, z.as_ptr()));
                k += 16;
            }
            if k < e {
                let m: __mmask16 = (1u16 << (e - k)) - 1;
                let idx = _mm512_maskz_loadu_epi32(m, targets.as_ptr().add(k) as *const _);
                let got = _mm512_mask_i32gather_ps::<4>(_mm512_setzero_ps(), m, idx, z.as_ptr());
                acc = _mm512_add_ps(acc, got);
            }
            _mm512_reduce_add_ps(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_three_kernels() {
        assert_eq!(parse_kind("scalar"), Some(KernelKind::Scalar));
        assert_eq!(parse_kind("blocked"), Some(KernelKind::Blocked));
        assert_eq!(parse_kind("f32"), Some(KernelKind::F32));
        assert_eq!(parse_kind("  Blocked \n"), Some(KernelKind::Blocked));
        assert_eq!(parse_kind("F32"), Some(KernelKind::F32));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "fast", "f64", "blocked,scalar", "0"] {
            assert_eq!(parse_kind(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn env_fallback_is_scalar() {
        assert_eq!(kind_from_env(None), KernelKind::Scalar);
        assert_eq!(kind_from_env(Some("blocked")), KernelKind::Blocked);
    }

    #[test]
    fn invalid_kernel_override_warns_and_falls_back() {
        // the warning must be visible even if the ambient SOCMIX_LOG
        // suppressed it
        socmix_obs::set_log_level(socmix_obs::Level::Warn);
        let _ = socmix_obs::take_recent_events();
        assert_eq!(kind_from_env(Some("quantum")), KernelKind::Scalar);
        assert_eq!(kind_from_env(Some("fast")), KernelKind::Scalar);
        let warnings: Vec<String> = socmix_obs::take_recent_events()
            .into_iter()
            .filter(|e| e.contains("invalid SOCMIX_KERNEL"))
            .collect();
        // warn_once: the first invalid value warns, later ones are
        // latched silent
        assert_eq!(warnings.len(), 1, "got {warnings:?}");
    }

    #[test]
    fn config_builders() {
        assert_eq!(KernelConfig::default().kind, KernelKind::Scalar);
        assert_eq!(KernelConfig::blocked().kind, KernelKind::Blocked);
        assert_eq!(KernelConfig::mixed_f32().kind, KernelKind::F32);
        assert_eq!(KernelConfig::scalar().col_tile, DEFAULT_COL_TILE);
        assert_eq!(KernelConfig::blocked().col_tile(7).col_tile, 7);
        assert_eq!(KernelConfig::blocked().col_tile(0).col_tile, 1);
    }

    /// A tiny CSR fixture: 5 rows with varying degrees, sorted targets.
    fn csr() -> (Vec<usize>, Vec<u32>) {
        let adj: Vec<Vec<u32>> = vec![
            vec![1, 2, 3, 4],
            vec![0, 2],
            vec![0, 1, 3],
            vec![0, 2],
            vec![0],
        ];
        let mut offsets = vec![0usize];
        let mut targets = Vec::new();
        for row in &adj {
            targets.extend_from_slice(row);
            offsets.push(targets.len());
        }
        (offsets, targets)
    }

    #[test]
    fn tiled_f64_gather_is_bitwise_scalar() {
        let (offsets, targets) = csr();
        let z: Vec<f64> = (0..5).map(|i| 1.0 / (i as f64 + 3.7)).collect();
        let scalar: Vec<f64> = (0..5)
            .map(|j| {
                targets[offsets[j]..offsets[j + 1]]
                    .iter()
                    .fold(0.0, |a, &t| a + z[t as usize])
            })
            .collect();
        for tile in [1, 2, 3, 64] {
            let mut y = vec![0.0; 5];
            gather_rows_f64(&offsets, &targets, &z, 0..5, tile, &mut y, |_, a| a);
            for (a, b) in y.iter().zip(&scalar) {
                assert_eq!(a.to_bits(), b.to_bits(), "tile {tile}");
            }
        }
    }

    #[test]
    fn tiled_gather_respects_row_subrange() {
        let (offsets, targets) = csr();
        let z = vec![1.0f64; 5];
        let mut y = vec![0.0; 2];
        gather_rows_f64(&offsets, &targets, &z, 1..3, 2, &mut y, |_, a| a);
        assert_eq!(y, vec![2.0, 3.0]); // degrees of rows 1 and 2
    }

    #[test]
    fn finish_sees_absolute_row_index() {
        let (offsets, targets) = csr();
        let z = vec![1.0f64; 5];
        let mut y = vec![0.0; 5];
        gather_rows_f64(&offsets, &targets, &z, 0..5, 2, &mut y, |j, a| {
            a * (j + 1) as f64
        });
        assert_eq!(y, vec![4.0, 4.0, 9.0, 8.0, 5.0]);
    }

    #[test]
    fn f32_gather_matches_exact_sum_on_small_rows() {
        let (offsets, targets) = csr();
        let z: Vec<f32> = (0..5).map(|i| (i as f32 + 1.0) / 8.0).collect();
        for tile in [1, 64] {
            let mut y = vec![0.0f32; 5];
            gather_rows_f32(&offsets, &targets, &z, 0..5, tile, &mut y, |_, a| a);
            for (j, &v) in y.iter().enumerate() {
                let exact: f32 = targets[offsets[j]..offsets[j + 1]]
                    .iter()
                    .map(|&t| z[t as usize])
                    .sum();
                // tiny rows: every accumulation order is exact here
                assert!((v - exact).abs() < 1e-6, "row {j}: {v} vs {exact}");
            }
        }
    }

    /// Exercises every tail length of the AVX-512 row sum (full
    /// 16-lane chunks, masked tails of 1..=15, and rows shorter than
    /// one chunk) against a scalar reference.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_row_sum_matches_scalar_for_all_tail_lengths() {
        if !avx512::available() {
            return; // nothing to exercise on this machine
        }
        let z: Vec<f32> = (0..97)
            .map(|i| ((i * 37 + 11) % 97) as f32 / 97.0)
            .collect();
        let targets: Vec<u32> = (0..200).map(|k| ((k * 61 + 13) % 97) as u32).collect();
        for s in [0usize, 3] {
            for len in 0..=48 {
                let e = s + len;
                let exact: f64 = targets[s..e].iter().map(|&t| z[t as usize] as f64).sum();
                // SAFETY: `available()` returned true, `e ≤
                // targets.len()`, and every target id is `< 97 =
                // z.len()` by construction.
                let got = unsafe { avx512::row_sum(&targets, s, e, &z) };
                assert!(
                    (got as f64 - exact).abs() < 1e-5,
                    "s={s} len={len}: {got} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn multi_gather_matches_scalar_per_column_bitwise() {
        let (offsets, targets) = csr();
        let inv: Vec<f64> = (0..5).map(|i| 1.0 / (i as f64 + 2.0)).collect();
        let width = 3;
        let stride = 4;
        let xs: Vec<f64> = (0..5 * stride).map(|k| (k as f64).sin()).collect();
        for tile in [1, 2, 128] {
            let mut y = vec![0.0; 5 * stride];
            gather_rows_multi_f64(
                &offsets,
                &targets,
                &inv,
                &xs,
                stride,
                width,
                0..5,
                tile,
                &mut y,
            );
            for j in 0..5 {
                for c in 0..width {
                    let mut acc = 0.0;
                    for &i in &targets[offsets[j]..offsets[j + 1]] {
                        acc += xs[i as usize * stride + c] * inv[i as usize];
                    }
                    assert_eq!(
                        y[j * stride + c].to_bits(),
                        acc.to_bits(),
                        "tile {tile} row {j} col {c}"
                    );
                }
            }
        }
    }
}
