//! Symmetric tridiagonal eigensolver (QL with implicit shifts).
//!
//! This is the inner solver Lanczos uses on its projected matrix
//! `T_k`. Classic EISPACK `tql2` algorithm; O(k²) per eigenvalue with
//! eigenvector accumulation, O(k³) total — trivial at Lanczos basis
//! sizes (k ≤ a few hundred).

/// Eigenvalues of the symmetric tridiagonal matrix with diagonal
/// `diag` and subdiagonal `offdiag` (`offdiag.len() == diag.len()-1`),
/// sorted **descending**.
pub fn tridiag_eigenvalues(diag: &[f64], offdiag: &[f64]) -> Vec<f64> {
    let (vals, _) = ql_implicit(diag, offdiag, false);
    vals
}

/// Full eigendecomposition of a symmetric tridiagonal matrix.
///
/// Returns `(values, vectors)` with values sorted **descending** and
/// `vectors[k]` the unit eigenvector (length `n`) for `values[k]`.
pub fn tridiag_eigen(diag: &[f64], offdiag: &[f64]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let (vals, vecs) = ql_implicit(diag, offdiag, true);
    (vals, vecs.expect("vectors requested"))
}

/// QL with implicit shifts. `want_vectors` accumulates the rotations
/// into an eigenvector matrix.
fn ql_implicit(
    diag: &[f64],
    offdiag: &[f64],
    want_vectors: bool,
) -> (Vec<f64>, Option<Vec<Vec<f64>>>) {
    let n = diag.len();
    assert!(n > 0, "empty matrix");
    assert_eq!(offdiag.len(), n - 1, "offdiag must have n-1 entries");
    let mut d = diag.to_vec();
    // e: subdiagonal padded with trailing 0 (e[i] couples i and i+1)
    let mut e = offdiag.to_vec();
    e.push(0.0);
    // z[k*n + j]: row k, column j; columns are eigenvectors
    let mut z = if want_vectors {
        let mut z = vec![0.0f64; n * n];
        for i in 0..n {
            z[i * n + i] = 1.0;
        }
        Some(z)
    } else {
        None
    };

    for l in 0..n {
        let mut iter = 0;
        loop {
            // find the first negligible subdiagonal at or after l
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 64, "QL failed to converge at row {l}");
            // implicit shift from the 2x2 at l
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + if g >= 0.0 { r } else { -r });
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // recover from underflow: deflate and restart row
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                if let Some(z) = z.as_deref_mut() {
                    for k in 0..n {
                        f = z[k * n + i + 1];
                        z[k * n + i + 1] = s * z[k * n + i] + c * f;
                        z[k * n + i] = c * z[k * n + i] - s * f;
                    }
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // sort descending, permuting eigenvector columns alongside
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[b].total_cmp(&d[a]));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let vectors = z.map(|z| {
        order
            .iter()
            .map(|&col| (0..n).map(|row| z[row * n + col]).collect())
            .collect()
    });
    (values, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{jacobi_eigen, DenseMatrix};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn single_element() {
        let (vals, vecs) = tridiag_eigen(&[5.0], &[]);
        assert_eq!(vals, vec![5.0]);
        assert_eq!(vecs, vec![vec![1.0]]);
    }

    #[test]
    fn diagonal_matrix() {
        let vals = tridiag_eigenvalues(&[1.0, 4.0, 2.0], &[0.0, 0.0]);
        assert_eq!(vals, vec![4.0, 2.0, 1.0]);
    }

    #[test]
    fn two_by_two() {
        // [[2,1],[1,2]] → 3, 1
        let (vals, vecs) = tridiag_eigen(&[2.0, 2.0], &[1.0]);
        assert_close(vals[0], 3.0, 1e-12);
        assert_close(vals[1], 1.0, 1e-12);
        // eigenvector for 3: (1,1)/√2 up to sign
        assert_close(vecs[0][0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-12);
    }

    #[test]
    fn known_toeplitz_spectrum() {
        // Tridiagonal Toeplitz with diag a=0, offdiag b=1, size n:
        // eigenvalues 2·cos(kπ/(n+1)), k=1..n
        let n = 12;
        let d = vec![0.0; n];
        let e = vec![1.0; n - 1];
        let vals = tridiag_eigenvalues(&d, &e);
        for (k, &v) in vals.iter().enumerate() {
            let expect = 2.0 * ((k as f64 + 1.0) * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert_close(v, expect, 1e-10);
        }
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let d = vec![1.0, -0.5, 2.0, 0.3, -1.2];
        let e = vec![0.7, 0.2, -0.9, 0.4];
        let (vals, vecs) = tridiag_eigen(&d, &e);
        let n = d.len();
        for k in 0..n {
            // T v = λ v componentwise
            let v = &vecs[k];
            for i in 0..n {
                let mut tv = d[i] * v[i];
                if i > 0 {
                    tv += e[i - 1] * v[i - 1];
                }
                if i + 1 < n {
                    tv += e[i] * v[i + 1];
                }
                assert_close(tv, vals[k] * v[i], 1e-10);
            }
            // unit norm
            assert_close(crate::vecops::norm2(v), 1.0, 1e-10);
        }
    }

    #[test]
    fn agrees_with_jacobi() {
        let d = vec![0.3, 1.1, -0.7, 0.0, 2.2, -1.5];
        let e = vec![0.5, -0.25, 0.8, 0.1, -0.6];
        let n = d.len();
        let mut m = DenseMatrix::zeros(n);
        for (i, &di) in d.iter().enumerate() {
            m.set(i, i, di);
        }
        for (i, &ei) in e.iter().enumerate() {
            m.set(i, i + 1, ei);
            m.set(i + 1, i, ei);
        }
        let (jv, _) = jacobi_eigen(&m);
        let tv = tridiag_eigenvalues(&d, &e);
        for (a, b) in jv.iter().zip(&tv) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn trace_and_frobenius_preserved() {
        let d = vec![2.0, -1.0, 0.5, 3.0];
        let e = vec![1.0, 0.3, -2.0];
        let vals = tridiag_eigenvalues(&d, &e);
        let trace: f64 = d.iter().sum();
        assert_close(vals.iter().sum::<f64>(), trace, 1e-10);
        let frob2: f64 =
            d.iter().map(|x| x * x).sum::<f64>() + 2.0 * e.iter().map(|x| x * x).sum::<f64>();
        assert_close(vals.iter().map(|x| x * x).sum::<f64>(), frob2, 1e-10);
    }

    #[test]
    #[should_panic]
    fn wrong_offdiag_length_rejected() {
        let _ = tridiag_eigenvalues(&[1.0, 2.0], &[0.1, 0.2]);
    }
}
